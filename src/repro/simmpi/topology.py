"""Hierarchical hardware topology, in the style of hwloc / TreeMatch.

A :class:`Topology` is a balanced tree described by a list of
``(level_name, arity)`` pairs from the root down.  Leaves are processing
units (PUs, i.e. cores).  For example PlaFRIM nodes from the paper —
two 12-core Haswell sockets per node — with 4 nodes::

    Topology([("node", 4), ("socket", 2), ("core", 12)])

has 96 PUs.  The *depth of the deepest common ancestor* of two PUs
determines which latency/bandwidth class a message between them pays
(see :mod:`repro.simmpi.network`) and is the distance notion TreeMatch
optimizes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["Topology"]


class Topology:
    """A balanced tree of hardware components.

    Parameters
    ----------
    levels:
        ``(name, arity)`` pairs from the root's children down to the
        leaves.  ``arity`` is the number of children of each component of
        the level *above*; the first entry is the number of top-level
        components (e.g. nodes in the cluster).
    """

    def __init__(self, levels: Sequence[Tuple[str, int]]):
        if not levels:
            raise ValueError("topology needs at least one level")
        names = [str(n) for n, _ in levels]
        arities = [int(a) for _, a in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names: {names}")
        if any(a < 1 for a in arities):
            raise ValueError(f"level arities must be >= 1: {arities}")
        self._names: List[str] = names
        self._arities: List[int] = arities
        # strides[d] = number of leaves under one component at depth d+1;
        # used to convert a leaf index into per-level coordinates.
        strides = []
        acc = 1
        for a in reversed(arities):
            strides.append(acc)
            acc *= a
        self._strides = list(reversed(strides))
        self._n_pus = acc

    # -- basic shape ---------------------------------------------------

    @property
    def level_names(self) -> List[str]:
        return list(self._names)

    @property
    def arities(self) -> List[int]:
        """Arity list from root down — the input TreeMatch consumes."""
        return list(self._arities)

    @property
    def depth(self) -> int:
        """Number of levels below the root."""
        return len(self._arities)

    @property
    def n_pus(self) -> int:
        """Total number of leaves (cores)."""
        return self._n_pus

    # -- coordinates ---------------------------------------------------

    def coords(self, pu: int) -> Tuple[int, ...]:
        """Per-level component indices of a PU, root-side first.

        ``coords(pu)[d]`` is the index (within its parent) of the depth-d
        component containing ``pu``.
        """
        self._check_pu(pu)
        out = []
        rem = pu
        for stride, arity in zip(self._strides, self._arities):
            out.append((rem // stride) % arity)
            rem %= stride
        return tuple(out)

    def component_of(self, pu: int, level: str) -> int:
        """Global index of the ``level`` component containing ``pu``."""
        d = self._level_index(level)
        self._check_pu(pu)
        stride = self._strides[d]
        return pu // stride

    def node_of(self, pu: int) -> int:
        """Convenience: index of the first-level component (the node)."""
        return self.component_of(pu, self._names[0])

    def n_components(self, level: str) -> int:
        d = self._level_index(level)
        n = 1
        for a in self._arities[: d + 1]:
            n *= a
        return n

    def pus_of_component(self, level: str, index: int) -> range:
        """The PUs under one component (leaves are contiguous)."""
        d = self._level_index(level)
        stride = self._strides[d]
        if not 0 <= index < self.n_components(level):
            raise ValueError(f"no {level} #{index}")
        return range(index * stride, (index + 1) * stride)

    # -- distances -----------------------------------------------------

    def common_depth(self, pu_a: int, pu_b: int) -> int:
        """Depth of the deepest common ancestor of two PUs.

        ``depth`` (== ``self.depth``) means the same PU; ``0`` means the
        PUs share only the root (different nodes).
        """
        self._check_pu(pu_a)
        self._check_pu(pu_b)
        if pu_a == pu_b:
            return self.depth
        d = 0
        for stride in self._strides:
            if pu_a // stride != pu_b // stride:
                return d
            d += 1
        return self.depth

    def common_level_name(self, pu_a: int, pu_b: int) -> str:
        """Name of the deepest level whose component both PUs share.

        Returns ``"self"`` for identical PUs and ``"cluster"`` when the
        PUs share nothing below the root.
        """
        d = self.common_depth(pu_a, pu_b)
        if d == self.depth:
            return "self"
        if d == 0:
            return "cluster"
        return self._names[d - 1]

    def hop_distance(self, pu_a: int, pu_b: int) -> int:
        """Tree distance: number of edges on the leaf-to-leaf path."""
        return 2 * (self.depth - self.common_depth(pu_a, pu_b))

    # -- helpers ---------------------------------------------------------

    def _level_index(self, level: str) -> int:
        try:
            return self._names.index(level)
        except ValueError:
            raise ValueError(f"unknown level {level!r}; have {self._names}") from None

    def _check_pu(self, pu: int) -> None:
        if not 0 <= pu < self._n_pus:
            raise ValueError(f"PU {pu} out of range [0, {self._n_pus})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spec = ", ".join(f"{n}x{a}" for n, a in zip(self._names, self._arities))
        return f"Topology({spec}; {self._n_pus} PUs)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Topology)
            and self._names == other._names
            and self._arities == other._arities
        )

    def __hash__(self) -> int:
        return hash((tuple(self._names), tuple(self._arities)))
