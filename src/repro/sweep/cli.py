"""``python -m repro.sweep`` — the sweep command-line interface.

Subcommands::

    run    execute (or resume) a sweep: cached cells are served
           instantly, misses fan out over worker processes
    ls     list the selected cells and their cache status
    clean  delete cache entries (all, per-scenario, or stale-only)

Examples::

    python -m repro.sweep run --jobs 4 --filter 'fig5|fig6'
    python -m repro.sweep run --smoke --jobs 2 --bench BENCH_sweep.json
    python -m repro.sweep ls --filter fig5
    python -m repro.sweep clean --stale
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.experiments.common import parse_sizes
from repro.sweep import runner
from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.registry import SweepConfig, cell_id

DEFAULT_REPORT = os.path.join("{cache}", "last-run.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Sharded, cached orchestration of the paper's "
                    "experiment grid.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--filter", default=None, metavar="REGEX",
                       help="scenario name regex (e.g. 'fig5|fig6'); "
                            "default: every non-hidden scenario")
        p.add_argument("--cache-dir", default=None,
                       help=f"cache location (default {default_cache_dir()}"
                            " or $REPRO_SWEEP_CACHE)")
        p.add_argument("--seed", type=int, default=None,
                       help="grid seed (default: per-scenario default)")
        p.add_argument("--sizes", type=parse_sizes, default=None,
                       metavar="N,N,...",
                       help="override each scenario's size axis")
        p.add_argument("--smoke", action="store_true",
                       help="tiny CI grids instead of the defaults")

    p_run = sub.add_parser("run", help="execute or resume a sweep")
    common(p_run)
    p_run.add_argument("--jobs", "-j", type=int, default=2,
                       help="worker processes (default 2)")
    p_run.add_argument("--timeout", type=float, default=600.0,
                       help="per-cell timeout in seconds (default 600)")
    p_run.add_argument("--retries", type=int, default=2,
                       help="retries per cell on crash/timeout/error "
                            "(default 2)")
    p_run.add_argument("--backoff", type=float, default=0.25,
                       help="base retry backoff seconds (default 0.25)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
    p_run.add_argument("--refresh", action="store_true",
                       help="recompute every cell (still updates the cache)")
    p_run.add_argument("--report", default=None, metavar="PATH",
                       help="machine-readable run report "
                            "(default <cache>/last-run.json)")
    p_run.add_argument("--bench", default=None, metavar="PATH",
                       help="also emit a BENCH_sweep.json perf record")
    p_run.add_argument("--show-reports", action="store_true",
                       help="print each figure's text report at the end")
    p_run.add_argument("--quiet", "-q", action="store_true",
                       help="suppress per-cell progress lines")

    p_ls = sub.add_parser("ls", help="list cells and cache status")
    common(p_ls)

    p_clean = sub.add_parser("clean", help="delete cache entries")
    common(p_clean)
    p_clean.add_argument("--stale", action="store_true",
                         help="only entries from older code fingerprints")
    return parser


def _progress_printer(total: int, quiet: bool):
    state = {"done": 0}

    def on_event(event):
        kind = event.get("type")
        if kind in ("ok", "cache-hit", "failed"):
            state["done"] += 1
        if quiet:
            return
        prefix = f"[{state['done']:>3}/{total}]"
        if kind == "cache-hit":
            print(f"{prefix} = {event['id']} (cache)", flush=True)
        elif kind == "ok":
            print(f"{prefix} + cell #{event['index']} ok "
                  f"{event['elapsed_s']:.2f}s "
                  f"(worker {event['worker']}, attempt {event['attempt']})",
                  flush=True)
        elif kind == "retry":
            reason = event["reason"].splitlines()[-1]
            print(f"{prefix} ~ cell #{event['index']} retry "
                  f"(attempt {event['attempt']}, "
                  f"backoff {event['backoff_s']:.2f}s): {reason}",
                  flush=True)
        elif kind == "failed":
            reason = event["reason"].splitlines()[-1]
            print(f"{prefix} ! cell #{event['index']} FAILED: {reason}",
                  flush=True)

    return on_event


def _cmd_run(args) -> int:
    config = SweepConfig(seed=args.seed, sizes=args.sizes, smoke=args.smoke)
    cache = ResultCache(root=args.cache_dir)
    cells = runner.select_cells(args.filter, config)
    print(f"sweep: {len(cells)} cells, jobs={args.jobs}, "
          f"fingerprint={cache.fingerprint[:12]}", flush=True)
    report = runner.run_sweep(
        filter_expr=args.filter,
        jobs=args.jobs,
        config=config,
        cache=cache,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        on_event=_progress_printer(len(cells), args.quiet),
    )

    totals = report.totals
    print(f"\nsweep done in {totals['wall_s']:.2f}s: "
          f"{totals['ok']}/{totals['cells']} ok, "
          f"{totals['cache_hits']} cached, {totals['computed']} computed, "
          f"{totals['retries']} retries, "
          f"{totals['workers_replaced']} workers replaced, "
          f"utilization {totals['worker_utilization']:.0%}", flush=True)
    print(f"telemetry: queue wait {totals['queue_wait_s']:.2f}s, "
          f"backoff {totals['backoff_s']:.2f}s, "
          f"peak worker RSS {totals['peak_rss_kb_max'] / 1024:.0f} MiB",
          flush=True)

    report_path = args.report
    if report_path is None and not args.no_cache:
        report_path = os.path.join(cache.root, "last-run.json")
    if report_path:
        runner.write_run_report(report, report_path)
        print(f"run report: {report_path}")
    if args.bench:
        runner.emit_bench(report, args.bench)
        print(f"bench record: {args.bench}")
    if args.show_reports:
        for name, text in runner.render_reports(report).items():
            print(f"\n===== {name} =====")
            print(text)
    return 0 if totals["failed"] == 0 else 1


def _cmd_ls(args) -> int:
    config = SweepConfig(seed=args.seed, sizes=args.sizes, smoke=args.smoke)
    cache = ResultCache(root=args.cache_dir)
    cells = runner.select_cells(args.filter, config)
    hits = 0
    for cell in cells:
        entry = cache.get(cell["scenario"], cell["params"])
        mark = "cached" if entry else "-"
        hits += bool(entry)
        print(f"{mark:>7}  {cell_id(cell['scenario'], cell['params'])}")
    print(f"\n{hits}/{len(cells)} cells cached "
          f"(fingerprint {cache.fingerprint[:12]}, dir {cache.root})")
    return 0


def _cmd_clean(args) -> int:
    cache = ResultCache(root=args.cache_dir)
    scenarios: Optional[list] = None
    if args.filter:
        import re

        rx = re.compile(args.filter)
        from repro.sweep.registry import scenario_names

        scenarios = [n for n in scenario_names(include_hidden=True)
                     if rx.search(n)]
    removed = cache.clean(scenarios=scenarios, stale_only=args.stale)
    print(f"removed {removed} cache entries from {cache.root}")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    return {"run": _cmd_run, "ls": _cmd_ls, "clean": _cmd_clean}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
