"""Scenario registry: the paper's evaluation grid as pure, picklable cells.

Each scenario (one per paper figure/table) decomposes its parameter
grid into *cells* — the smallest independently computable unit, always
a pure function of a plain-dict parameter set.  A cell is computed by a
worker process, serialized to canonical JSON for the cache, and decoded
back into the experiment module's dataclasses for report rendering, so
``python -m repro.sweep`` and the serial drivers share one source of
truth for grids, defaults and report formats.

Cell granularity per scenario:

========  ==========================================================
fig2      one cell (single two-rank engine run)
fig4      one cell per (node count, message size) — one Welch CI each
fig5      one cell per (op, node count) — the buffer sweep shares one
          monitored reordering, so it cannot split further
fig6      one cell per (nodes, buffer size, iterations), cold engine
fig7      one cell per (class, NP, mapping) — ``fig7_cg.run_one``
table1    one cell per matrix order (real wall-clock timing)
whatif    one cell per (op, node count) — record a fig5 cell, then
          search candidate placements offline via repro.replay
selftest  hidden micro-scenario used by executor tests and CI chaos
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["SweepConfig", "ScenarioSpec", "SCENARIOS", "get_scenario",
           "scenario_names", "compute_cell", "cell_id"]


@dataclass(frozen=True)
class SweepConfig:
    """Knobs that shape grid enumeration (not cell execution)."""

    seed: Optional[int] = None  # None: each scenario's own default
    sizes: Optional[Tuple[int, ...]] = None  # override the size axis
    smoke: bool = False  # tiny CI grids


@dataclass(frozen=True)
class ScenarioSpec:
    name: str
    title: str
    enumerate_cells: Callable[[SweepConfig], List[Dict[str, Any]]]
    compute: Callable[[Dict[str, Any]], Any]
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]
    report: Callable[[List[Any]], str]
    hidden: bool = False  # excluded unless the filter names it


def cell_id(scenario: str, params: Dict[str, Any]) -> str:
    inner = ",".join(f"{k}={params[k]}" for k in params)
    return f"{scenario}[{inner}]"


# ---------------------------------------------------------------- fig2


def _fig2_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments.common import full_scale

    if cfg.smoke:
        duration = 1.5
    else:
        duration = 45.0 if full_scale() else 10.0
    seed = 42 if cfg.seed is None else cfg.seed
    params: Dict[str, Any] = {"duration": duration, "seed": seed}
    if cfg.sizes is not None and len(cfg.sizes) == 2:
        params["size_range"] = list(cfg.sizes)
    return [params]


def _fig2_compute(params: Dict[str, Any]):
    from repro.experiments import fig2_counters

    size_range = tuple(params.get("size_range",
                                  fig2_counters.DEFAULT_SIZE_RANGE))
    return fig2_counters.run(duration=params["duration"],
                             seed=params["seed"], size_range=size_range)


def _fig2_encode(res) -> Dict[str, Any]:
    return {
        "times": [float(t) for t in res.times],
        "hw_window": [int(v) for v in res.hw_window],
        "mon_window": [int(v) for v in res.mon_window],
        "total_sent": int(res.total_sent),
    }


def _fig2_decode(doc):
    import numpy as np

    from repro.experiments.fig2_counters import CounterComparison

    return CounterComparison(
        times=np.asarray(doc["times"], dtype=float),
        hw_window=np.asarray(doc["hw_window"], dtype=np.int64),
        mon_window=np.asarray(doc["mon_window"], dtype=np.int64),
        total_sent=int(doc["total_sent"]),
    )


def _fig2_report(results: List[Any]) -> str:
    from repro.experiments import fig2_counters

    return "\n\n".join(fig2_counters.report(r) for r in results)


# ---------------------------------------------------------------- fig4


def _fig4_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import fig4_overhead
    from repro.experiments.common import full_scale

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        nodes, sizes, reps = (2,), (1, 1_000), 10
    else:
        nodes = (2, 4, 8)
        sizes = cfg.sizes or fig4_overhead.DEFAULT_SIZES
        reps = 180 if full_scale() else 40
    return [
        {"n_nodes": n, "size_bytes": s, "reps": reps, "seed": seed}
        for n in nodes for s in sizes
    ]


def _fig4_compute(params: Dict[str, Any]):
    from repro.experiments import fig4_overhead

    return fig4_overhead.run_point(
        params["n_nodes"], params["size_bytes"], reps=params["reps"],
        seed=params["seed"],
    )


def _fig4_encode(p) -> Dict[str, Any]:
    return {
        "np_ranks": int(p.np_ranks),
        "size_bytes": int(p.size_bytes),
        "mean_diff_us": float(p.mean_diff_us),
        "ci95_us": float(p.ci95_us),
        "n_reps": int(p.n_reps),
    }


def _fig4_decode(doc):
    from repro.experiments.fig4_overhead import OverheadPoint

    return OverheadPoint(**doc)


def _fig4_report(results: List[Any]) -> str:
    from repro.experiments import fig4_overhead

    return fig4_overhead.report(results)


# ---------------------------------------------------------------- fig5


def _fig5_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import fig5_collectives
    from repro.experiments.common import full_scale

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        nodes: Tuple[int, ...] = (2,)
        sizes = (2_000_000,)
        reps = 1
    else:
        nodes = (2, 4, 8)
        sizes = cfg.sizes or (fig5_collectives.FULL_SIZES if full_scale()
                              else fig5_collectives.DEFAULT_SIZES)
        reps = 3
    return [
        {"op": op, "n_nodes": n, "sizes": list(sizes), "reps": reps,
         "seed": seed}
        for op in ("reduce", "bcast") for n in nodes
    ]


def _fig5_compute(params: Dict[str, Any]):
    from repro.experiments import fig5_collectives

    return fig5_collectives.run_cell(
        params["op"], params["n_nodes"], sizes=tuple(params["sizes"]),
        reps=params["reps"], seed=params["seed"],
    )


def _fig5_encode(points) -> List[Dict[str, Any]]:
    return [
        {"op": p.op, "np_ranks": int(p.np_ranks), "n_ints": int(p.n_ints),
         "t_baseline": float(p.t_baseline),
         "t_reordered": float(p.t_reordered)}
        for p in points
    ]


def _fig5_decode(doc):
    from repro.experiments.fig5_collectives import CollectivePoint

    return [CollectivePoint(**d) for d in doc]


def _fig5_report(results: List[Any]) -> str:
    from repro.experiments import fig5_collectives

    points = [p for cell in results for p in cell]
    out = []
    for op in ("reduce", "bcast"):
        sub = [p for p in points if p.op == op]
        if sub:
            out.append(fig5_collectives.report(sub))
    return "\n\n".join(out)


# ---------------------------------------------------------------- fig6


def _fig6_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import fig6_allgather
    from repro.experiments.common import full_scale

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        nodes: Tuple[int, ...] = (2,)
        sizes: Sequence[int] = (1, 100_000)
        iters: Sequence[int] = (1, 100)
    elif full_scale():
        nodes = (2, 4, 8)
        sizes = cfg.sizes or fig6_allgather.FULL_SIZES
        iters = fig6_allgather.FULL_ITERS
    else:
        nodes = (2,)
        sizes = cfg.sizes or fig6_allgather.DEFAULT_SIZES
        iters = fig6_allgather.DEFAULT_ITERS
    return [
        {"n_nodes": n, "n_ints": s, "iterations": it, "group_size": 8,
         "seed": seed}
        for n in nodes for s in sizes for it in iters
    ]


def _fig6_compute(params: Dict[str, Any]):
    from repro.experiments import fig6_allgather

    return fig6_allgather.run_cell(
        params["n_nodes"], params["n_ints"], params["iterations"],
        group_size=params["group_size"], seed=params["seed"],
    )


def _fig6_encode(c) -> Dict[str, Any]:
    return {
        "np_ranks": int(c.np_ranks), "n_ints": int(c.n_ints),
        "iterations": int(c.iterations), "t1": float(c.t1),
        "t2": float(c.t2), "t3": float(c.t3),
        "gain_percent": float(c.gain_percent),
    }


def _fig6_decode(doc):
    from repro.experiments.fig6_allgather import HeatmapCell

    return HeatmapCell(**doc)


def _fig6_report(results: List[Any]) -> str:
    from repro.experiments import fig6_allgather

    return fig6_allgather.report(results)


# ---------------------------------------------------------------- fig7


def _fig7_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import fig7_cg

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        grid = [("B", 64)]
        mappings: Sequence[str] = ("rr",)
        sim_iters = 1
    else:
        rank_counts = cfg.sizes or None
        grid = fig7_cg.default_grid(rank_counts=rank_counts)
        mappings = fig7_cg.MAPPINGS
        sim_iters = 2
    return [
        {"cg_class": c, "np_ranks": p, "mapping": m, "sim_iters": sim_iters,
         "seed": seed}
        for c, p in grid for m in mappings
    ]


def _fig7_compute(params: Dict[str, Any]):
    from repro.experiments import fig7_cg

    return fig7_cg.run_one(
        params["cg_class"], params["np_ranks"], params["mapping"],
        sim_iters=params["sim_iters"], seed=params["seed"],
    )


def _fig7_encode(p) -> Dict[str, Any]:
    return {
        "cg_class": p.cg_class, "np_ranks": int(p.np_ranks),
        "mapping": p.mapping, "t_base": float(p.t_base),
        "t_reordered": float(p.t_reordered),
        "comm_base": float(p.comm_base),
        "comm_reordered": float(p.comm_reordered),
    }


def _fig7_decode(doc):
    from repro.experiments.fig7_cg import CGPoint

    return CGPoint(**doc)


def _fig7_report(results: List[Any]) -> str:
    from repro.experiments import fig7_cg

    return fig7_cg.report(results)


# -------------------------------------------------------------- table1


def _table1_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import table1_treematch
    from repro.experiments.common import full_scale

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        sizes: Sequence[int] = (256, 512)
    else:
        sizes = cfg.sizes or (table1_treematch.FULL_SIZES if full_scale()
                              else table1_treematch.DEFAULT_SIZES)
    return [{"order": n, "seed": seed} for n in sizes]


def _table1_compute(params: Dict[str, Any]):
    from repro.experiments import table1_treematch

    return table1_treematch.run_order(params["order"], seed=params["seed"])


def _table1_encode(t) -> Dict[str, Any]:
    return {"order": int(t.order), "seconds": float(t.seconds)}


def _table1_decode(doc):
    from repro.experiments.table1_treematch import TreeMatchTiming

    return TreeMatchTiming(**doc)


def _table1_report(results: List[Any]) -> str:
    from repro.experiments import table1_treematch

    return table1_treematch.report(results)


# -------------------------------------------------------------- whatif


def _whatif_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    from repro.experiments import fig5_collectives

    seed = 0 if cfg.seed is None else cfg.seed
    if cfg.smoke:
        ops: Sequence[str] = ("reduce",)
        nodes: Tuple[int, ...] = (2,)
        sizes: Sequence[int] = (1_000_000,)
        strategies = ["treematch", "local"]
    else:
        ops = ("reduce", "bcast")
        nodes = (2, 4)
        sizes = cfg.sizes or fig5_collectives.DEFAULT_SIZES
        strategies = ["identity", "treematch", "greedy", "local",
                      "round_robin"]
    return [
        {"op": op, "n_nodes": n, "sizes": list(sizes), "reps": 1,
         "seed": seed, "strategies": strategies}
        for op in ops for n in nodes
    ]


def _whatif_compute(params: Dict[str, Any]) -> Dict[str, Any]:
    """Record one fig5 cell live, then search placements offline."""
    from repro.experiments import fig5_collectives
    from repro.replay import autorecord
    from repro.replay.search import what_if_search

    with autorecord.capture(meta={"workload": "fig5"}) as traces:
        fig5_collectives.run_cell(
            params["op"], params["n_nodes"], sizes=tuple(params["sizes"]),
            reps=params["reps"], seed=params["seed"])
    trace = traces[0]
    res = what_if_search(trace, strategies=params["strategies"],
                         seed=params["seed"])
    return {
        "op": params["op"],
        "np_ranks": trace.world_size,
        "n_events": len(trace.events),
        "recorded_makespan": res.recorded_makespan,
        "best": res.best.strategy,
        "speedup": res.speedup,
        "k": [int(v) for v in res.k],
        "candidates": [
            {"strategy": c.strategy, "makespan": c.makespan,
             "inter_node_bytes": c.inter_node_bytes}
            for c in res.candidates
        ],
    }


def _whatif_report(results: List[Any]) -> str:
    from repro.experiments.common import render_table

    rows = []
    for r in results:
        for c in r["candidates"]:
            rows.append((
                r["op"], r["np_ranks"], c["strategy"],
                round(c["makespan"], 6),
                round(r["recorded_makespan"] / c["makespan"], 3)
                if c["makespan"] else "inf",
                int(c["inter_node_bytes"]),
            ))
    best = "; ".join(
        f"{r['op']}/np{r['np_ranks']}: {r['best']} ({r['speedup']:.2f}x)"
        for r in results)
    table = render_table(
        ["op", "np", "strategy", "makespan (s)", "speedup",
         "inter-node bytes"],
        rows,
        title="whatif — offline placement search over recorded traces")
    return f"{table}\n\nbest per cell: {best}"


# ------------------------------------------------------------ selftest


def _selftest_cells(cfg: SweepConfig) -> List[Dict[str, Any]]:
    seed = 0 if cfg.seed is None else cfg.seed
    n = 4 if cfg.smoke else 8
    return [{"x": seed + i} for i in range(n)]


def _selftest_compute(params: Dict[str, Any]):
    if params.get("fail"):
        raise RuntimeError("selftest: injected failure")
    delay = params.get("delay", 0.0)
    if delay:
        time.sleep(float(delay))
    x = int(params["x"])
    return {"x": x, "y": x * x}


def _selftest_report(results: List[Any]) -> str:
    from repro.experiments.common import render_table

    return render_table(["x", "y"],
                        [(r["x"], r["y"]) for r in results],
                        title="selftest — trivial cells")


def _identity(x):
    return x


SCENARIOS: Dict[str, ScenarioSpec] = {}


def _register(spec: ScenarioSpec) -> None:
    SCENARIOS[spec.name] = spec


_register(ScenarioSpec(
    "fig2", "Fig. 2/3 — HW counters vs introspection (§6.1)",
    _fig2_cells, _fig2_compute, _fig2_encode, _fig2_decode, _fig2_report))
_register(ScenarioSpec(
    "fig4", "Fig. 4 — monitoring overhead on MPI_Reduce (§6.2)",
    _fig4_cells, _fig4_compute, _fig4_encode, _fig4_decode, _fig4_report))
_register(ScenarioSpec(
    "fig5", "Fig. 5 — collective optimization by rank reordering (§6.3)",
    _fig5_cells, _fig5_compute, _fig5_encode, _fig5_decode, _fig5_report))
_register(ScenarioSpec(
    "fig6", "Fig. 6 — reordering-gain heatmap, grouped allgathers (§6.4)",
    _fig6_cells, _fig6_compute, _fig6_encode, _fig6_decode, _fig6_report))
_register(ScenarioSpec(
    "fig7", "Fig. 7 — NAS CG rank reordering (§6.5)",
    _fig7_cells, _fig7_compute, _fig7_encode, _fig7_decode, _fig7_report))
_register(ScenarioSpec(
    "table1", "Table 1 — TreeMatch computation time (§7)",
    _table1_cells, _table1_compute, _table1_encode, _table1_decode,
    _table1_report))
_register(ScenarioSpec(
    "whatif", "What-if placement search on recorded replay traces",
    _whatif_cells, _whatif_compute, _identity, _identity, _whatif_report))
_register(ScenarioSpec(
    "selftest", "executor self-test cells (hidden)",
    _selftest_cells, _selftest_compute, _identity, _identity,
    _selftest_report, hidden=True))


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown sweep scenario {name!r}; "
                       f"known: {', '.join(sorted(SCENARIOS))}") from None


def scenario_names(include_hidden: bool = False) -> List[str]:
    return [n for n, s in SCENARIOS.items() if include_hidden or not s.hidden]


def compute_cell(scenario: str, params: Dict[str, Any]) -> Any:
    """Compute one cell and return its *encoded* (JSON-able) payload.

    This is the function worker processes execute; it is importable at
    module top level so it survives any multiprocessing start method.
    """
    spec = get_scenario(scenario)
    return spec.encode(spec.compute(params))
