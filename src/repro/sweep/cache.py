"""Content-addressed result cache for sweep cells.

Every cell result is stored as one JSON file under ``.sweep-cache/``
(override with ``--cache-dir`` or ``REPRO_SWEEP_CACHE``).  The cache
key is the SHA-256 of the canonical JSON of::

    {"scenario": <name>, "params": <cell params>, "fingerprint": <code>}

where ``fingerprint`` is the source fingerprint of the ``repro``
package (:mod:`repro.core.fingerprint`): a re-run with unchanged code
and parameters resumes from cache; *any* source edit orphans every
stale entry.  Results are serialized canonically (sorted keys, fixed
separators), so a cached payload is byte-identical to a freshly
computed one — asserted in ``tests/sweep/test_cache.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.fingerprint import package_fingerprint

__all__ = ["canonical_dumps", "cell_key", "CacheEntry", "ResultCache",
           "default_cache_dir"]

_SCHEMA = 1


def default_cache_dir() -> str:
    return os.environ.get("REPRO_SWEEP_CACHE", ".sweep-cache")


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, plain floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def cell_key(scenario: str, params: Dict[str, Any], fingerprint: str) -> str:
    blob = canonical_dumps(
        {"scenario": scenario, "params": params, "fingerprint": fingerprint}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    scenario: str
    params: Dict[str, Any]
    fingerprint: str
    key: str
    result: Any
    elapsed_s: float
    created_unix: float
    path: str = ""


class ResultCache:
    """JSON files keyed by ``<scenario>.<key-prefix>.json``.

    Writes are atomic (tempfile + rename), so a sweep killed mid-write
    never leaves a truncated entry for the next resume to trip on.
    """

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None):
        self.root = root if root is not None else default_cache_dir()
        self.fingerprint = fingerprint or package_fingerprint()

    # -- paths ---------------------------------------------------------

    def key_for(self, scenario: str, params: Dict[str, Any]) -> str:
        return cell_key(scenario, params, self.fingerprint)

    def path_for(self, scenario: str, params: Dict[str, Any]) -> str:
        key = self.key_for(scenario, params)
        return os.path.join(self.root, f"{scenario}.{key[:24]}.json")

    # -- read/write ----------------------------------------------------

    def get(self, scenario: str, params: Dict[str, Any]) -> Optional[CacheEntry]:
        path = self.path_for(scenario, params)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        if doc.get("schema") != _SCHEMA:
            return None
        key = self.key_for(scenario, params)
        if doc.get("key") != key:
            return None  # prefix collision or stale rename
        return CacheEntry(
            scenario=doc["scenario"], params=doc["params"],
            fingerprint=doc["fingerprint"], key=doc["key"],
            result=doc["result"], elapsed_s=doc.get("elapsed_s", 0.0),
            created_unix=doc.get("created_unix", 0.0), path=path,
        )

    def put(self, scenario: str, params: Dict[str, Any], result: Any,
            elapsed_s: float = 0.0) -> CacheEntry:
        key = self.key_for(scenario, params)
        path = self.path_for(scenario, params)
        os.makedirs(self.root, exist_ok=True)
        doc = {
            "schema": _SCHEMA,
            "scenario": scenario,
            "params": params,
            "fingerprint": self.fingerprint,
            "key": key,
            "result": result,
            "elapsed_s": round(float(elapsed_s), 6),
            "created_unix": round(time.time(), 3),
        }
        # Canonical result serialization inside a readable envelope:
        # the "result" value is embedded exactly as canonical_dumps
        # renders it, so cached-vs-fresh comparisons are byte-level.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(canonical_dumps(doc))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return CacheEntry(scenario=scenario, params=params,
                          fingerprint=self.fingerprint, key=key,
                          result=result, elapsed_s=elapsed_s,
                          created_unix=doc["created_unix"], path=path)

    # -- maintenance ---------------------------------------------------

    def entries(self) -> Iterator[CacheEntry]:
        """Every parseable entry on disk (any fingerprint)."""
        if not os.path.isdir(self.root):
            return
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if doc.get("schema") != _SCHEMA:
                continue
            yield CacheEntry(
                scenario=doc.get("scenario", "?"), params=doc.get("params", {}),
                fingerprint=doc.get("fingerprint", ""), key=doc.get("key", ""),
                result=doc.get("result"), elapsed_s=doc.get("elapsed_s", 0.0),
                created_unix=doc.get("created_unix", 0.0), path=path,
            )

    def clean(self, scenarios: Optional[List[str]] = None,
              stale_only: bool = False) -> int:
        """Delete entries; returns how many files went away.

        ``scenarios`` restricts by scenario name; ``stale_only`` keeps
        entries whose fingerprint matches the current code.
        """
        removed = 0
        for entry in list(self.entries()):
            if scenarios is not None and entry.scenario not in scenarios:
                continue
            if stale_only and entry.fingerprint == self.fingerprint:
                continue
            os.unlink(entry.path)
            removed += 1
        return removed
