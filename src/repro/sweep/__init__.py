"""``repro.sweep`` — sharded experiment orchestration.

The paper's evaluation is a grid of scenarios (collective × size ×
cluster × placement policy, Figs. 2–7 + Table 1).  This subsystem runs
that fleet of simulations fast, resumable and fault-tolerant:

* :mod:`repro.sweep.registry` — every experiment decomposed into pure,
  picklable parameter cells;
* :mod:`repro.sweep.executor` — a supervised multiprocessing pool with
  per-cell timeouts, bounded retries with backoff, and crashed-worker
  replacement;
* :mod:`repro.sweep.cache` — a content-addressed JSON result cache
  keyed on (scenario, params, code fingerprint), so re-runs and
  partially failed sweeps resume instead of recomputing;
* :mod:`repro.sweep.runner` — orchestration + run report + the
  ``BENCH_sweep.json`` emitter;
* :mod:`repro.sweep.cli` — ``python -m repro.sweep run|ls|clean``.

See DESIGN.md §4.2 for the architecture and failure semantics.
"""

from repro.sweep.cache import ResultCache, canonical_dumps, cell_key  # noqa: F401
from repro.sweep.executor import (CellOutcome, CellTask,  # noqa: F401
                                  SweepExecutor)
from repro.sweep.registry import (SCENARIOS, ScenarioSpec,  # noqa: F401
                                  SweepConfig, cell_id, get_scenario,
                                  scenario_names)
from repro.sweep.runner import (RunReport, emit_bench,  # noqa: F401
                                render_reports, results_by_scenario,
                                run_sweep, select_cells)
