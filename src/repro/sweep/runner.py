"""Sweep orchestration: enumerate → cache-probe → execute → report.

``run_sweep`` is the one entry point everything uses — the CLI
(``python -m repro.sweep``), the EXPERIMENTS.md generator
(``scripts/generate_experiments_md.py``) and the CI smoke job.  It
enumerates the selected scenarios' cells, serves every cell whose
(params, code-fingerprint) key is already cached, fans the misses out
over the :class:`~repro.sweep.executor.SweepExecutor`, caches fresh
results, and returns a :class:`RunReport` that can be serialized as
the machine-readable run report or rendered into per-figure text
reports.

``emit_bench`` distills a report into ``BENCH_sweep.json`` — the
repo's sweep performance trajectory (per-figure wall-clock, cache hit
rate, worker utilization).
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sweep import registry as _registry
from repro.sweep.cache import ResultCache
from repro.sweep.executor import CellTask, SweepExecutor
from repro.sweep.registry import SweepConfig, cell_id, get_scenario

__all__ = ["CellRecord", "RunReport", "select_cells", "run_sweep",
           "results_by_scenario", "render_reports", "emit_bench",
           "write_run_report"]

# Schema 2 added the per-cell "telemetry" section (queue wait, backoff,
# peak RSS) and the top-level "observability" section of the bench doc.
REPORT_SCHEMA = 2


@dataclass
class CellRecord:
    """One cell's outcome, cache provenance included."""

    id: str
    scenario: str
    params: Dict[str, Any]
    status: str  # "ok" | "failed"
    from_cache: bool
    attempts: int
    elapsed_s: float
    error: Optional[str] = None
    retry_log: List[str] = field(default_factory=list)
    result: Any = None  # encoded payload (JSON-able)
    # Executor telemetry (zero for cache hits).
    queue_wait_s: float = 0.0
    backoff_s: float = 0.0
    peak_rss_kb: int = 0


@dataclass
class RunReport:
    fingerprint: str
    jobs: int
    filter: Optional[str]
    smoke: bool
    wall_s: float
    cells: List[CellRecord]
    worker_utilization: float
    workers_replaced: int

    @property
    def totals(self) -> Dict[str, Any]:
        ok = sum(1 for c in self.cells if c.status == "ok")
        failed = len(self.cells) - ok
        hits = sum(1 for c in self.cells if c.from_cache)
        computed = sum(1 for c in self.cells
                       if c.status == "ok" and not c.from_cache)
        retries = sum(max(0, c.attempts - 1) for c in self.cells)
        return {
            "cells": len(self.cells),
            "ok": ok,
            "failed": failed,
            "cache_hits": hits,
            "computed": computed,
            "retries": retries,
            "cache_hit_rate": (hits / len(self.cells)) if self.cells else 0.0,
            "worker_utilization": round(self.worker_utilization, 4),
            "workers_replaced": self.workers_replaced,
            "wall_s": round(self.wall_s, 3),
            "queue_wait_s": round(
                sum(c.queue_wait_s for c in self.cells), 3),
            "backoff_s": round(sum(c.backoff_s for c in self.cells), 3),
            "peak_rss_kb_max": max(
                (c.peak_rss_kb for c in self.cells), default=0),
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "fingerprint": self.fingerprint,
            "jobs": self.jobs,
            "filter": self.filter,
            "smoke": self.smoke,
            "totals": self.totals,
            "cells": [
                {
                    "id": c.id, "scenario": c.scenario, "params": c.params,
                    "status": c.status, "from_cache": c.from_cache,
                    "attempts": c.attempts,
                    "elapsed_s": round(c.elapsed_s, 6),
                    "error": c.error, "retry_log": c.retry_log,
                    "telemetry": {
                        "queue_wait_s": round(c.queue_wait_s, 6),
                        "backoff_s": round(c.backoff_s, 6),
                        "peak_rss_kb": c.peak_rss_kb,
                    },
                }
                for c in self.cells
            ],
        }


def select_cells(
    filter_expr: Optional[str] = None,
    config: Optional[SweepConfig] = None,
) -> List[Dict[str, Any]]:
    """Enumerate ``[{"scenario": ..., "params": ...}, ...]`` for every
    scenario whose name matches ``filter_expr`` (regex, ``None`` = all
    non-hidden).  Hidden scenarios are included only when the filter
    names them explicitly."""
    config = config or SweepConfig()
    rx = re.compile(filter_expr) if filter_expr else None
    out: List[Dict[str, Any]] = []
    for name in _registry.scenario_names(include_hidden=True):
        spec = get_scenario(name)
        if rx is None:
            if spec.hidden:
                continue
        elif not rx.search(name):
            continue
        for params in spec.enumerate_cells(config):
            out.append({"scenario": name, "params": params})
    return out


def run_sweep(
    filter_expr: Optional[str] = None,
    jobs: int = 2,
    config: Optional[SweepConfig] = None,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    refresh: bool = False,
    timeout_s: float = 600.0,
    retries: int = 2,
    backoff_s: float = 0.25,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> RunReport:
    """Run (or resume) a sweep; see the module docstring.

    ``use_cache=False`` neither reads nor writes the cache;
    ``refresh=True`` recomputes every cell but still stores results.
    """
    config = config or SweepConfig()
    cache = cache or ResultCache()
    events = on_event or (lambda e: None)
    t0 = time.monotonic()

    cells = select_cells(filter_expr, config)
    records: List[Optional[CellRecord]] = [None] * len(cells)
    misses: List[CellTask] = []
    for i, cell in enumerate(cells):
        name, params = cell["scenario"], cell["params"]
        entry = None
        if use_cache and not refresh:
            entry = cache.get(name, params)
        if entry is not None:
            records[i] = CellRecord(
                id=cell_id(name, params), scenario=name, params=params,
                status="ok", from_cache=True, attempts=0,
                elapsed_s=entry.elapsed_s, result=entry.result,
            )
            events({"type": "cache-hit", "index": i,
                    "id": records[i].id})
        else:
            misses.append(CellTask(index=i, scenario=name, params=params))

    executor = SweepExecutor(jobs=jobs, timeout_s=timeout_s,
                             retries=retries, backoff_s=backoff_s)
    if misses:
        outcomes = executor.run(misses, on_event=events)
    else:
        outcomes = []

    for out in outcomes:
        cell = cells[out.index]
        name, params = cell["scenario"], cell["params"]
        records[out.index] = CellRecord(
            id=cell_id(name, params), scenario=name, params=params,
            status=out.status, from_cache=False, attempts=out.attempts,
            elapsed_s=out.elapsed_s, error=out.error,
            retry_log=out.retry_log, result=out.result,
            queue_wait_s=out.queue_wait_s, backoff_s=out.backoff_s,
            peak_rss_kb=out.peak_rss_kb,
        )
        if out.status == "ok" and use_cache:
            cache.put(name, params, out.result, elapsed_s=out.elapsed_s)

    return RunReport(
        fingerprint=cache.fingerprint,
        jobs=jobs,
        filter=filter_expr,
        smoke=config.smoke,
        wall_s=time.monotonic() - t0,
        cells=[r for r in records if r is not None],
        worker_utilization=executor.utilization,
        workers_replaced=executor.workers_replaced,
    )


def results_by_scenario(report: RunReport) -> Dict[str, List[Any]]:
    """Decode every successful cell back into the experiment modules'
    dataclasses, grouped by scenario in enumeration order."""
    out: Dict[str, List[Any]] = {}
    for cell in report.cells:
        if cell.status != "ok":
            continue
        spec = get_scenario(cell.scenario)
        out.setdefault(cell.scenario, []).append(spec.decode(cell.result))
    return out


def render_reports(report: RunReport) -> Dict[str, str]:
    """Per-scenario text reports (the paper tables) from the results."""
    decoded = results_by_scenario(report)
    return {
        name: get_scenario(name).report(results)
        for name, results in decoded.items()
    }


def emit_bench(report: RunReport, path: str = "BENCH_sweep.json") -> Dict[str, Any]:
    """Write the sweep's perf trajectory record; returns the document."""
    per_figure: Dict[str, Dict[str, Any]] = {}
    for cell in report.cells:
        fig = per_figure.setdefault(cell.scenario, {
            "cells": 0, "ok": 0, "failed": 0, "cache_hits": 0,
            "computed_wall_s": 0.0,
        })
        fig["cells"] += 1
        fig["ok" if cell.status == "ok" else "failed"] += 1
        if cell.from_cache:
            fig["cache_hits"] += 1
        elif cell.status == "ok":
            fig["computed_wall_s"] = round(
                fig["computed_wall_s"] + cell.elapsed_s, 6)
    totals = report.totals
    doc = {
        "bench": "repro.sweep",
        "schema": REPORT_SCHEMA,
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "jobs": report.jobs,
        "filter": report.filter,
        "smoke": report.smoke,
        "fingerprint": report.fingerprint,
        "totals": totals,
        "observability": {
            "queue_wait_s_total": totals["queue_wait_s"],
            "backoff_s_total": totals["backoff_s"],
            "peak_rss_kb_max": totals["peak_rss_kb_max"],
            "retries": totals["retries"],
            "workers_replaced": totals["workers_replaced"],
            "worker_utilization": totals["worker_utilization"],
        },
        "figures": per_figure,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def write_run_report(report: RunReport, path: str) -> None:
    d = os.path.dirname(path)
    if d:
        os.makedirs(d, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
