"""Sharded cell executor: a supervised multiprocessing worker pool.

The executor fans cells out over ``jobs`` worker processes and
supervises them from the parent:

* **per-cell timeouts** — a worker that exceeds the deadline for its
  cell is killed and replaced by a fresh process;
* **crash replacement** — a worker that dies mid-cell (segfault,
  ``os._exit``, OOM kill) is detected via its process sentinel and
  replaced; the cell it held is requeued;
* **bounded retries with backoff** — every requeue (crash, timeout or
  Python exception inside the cell) counts as an attempt; a cell is
  retried up to ``retries`` times with exponential backoff
  (``backoff_s * 2**attempt``) before being reported as failed.

Chaos injection (used by the CI ``sweep-smoke`` job and the executor
tests) is gated behind ``REPRO_SWEEP_CHAOS``, e.g.
``REPRO_SWEEP_CHAOS="crash=1,timeout=1"``: shared budget counters make
exactly N workers hard-exit mid-cell / stall past the deadline, which
must be invisible in the final results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None

__all__ = ["CellTask", "CellOutcome", "SweepExecutor", "parse_chaos"]

_EXIT = ("exit",)


def _peak_rss_kb() -> int:
    """The calling process's peak RSS in KiB (0 where unavailable).

    ``ru_maxrss`` is KiB on Linux but bytes on macOS."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":  # pragma: no cover - macOS only
        peak //= 1024
    return int(peak)


def parse_chaos(text: Optional[str]) -> Dict[str, int]:
    """``"crash=1,timeout=2"`` → ``{"crash": 1, "timeout": 2}``."""
    out: Dict[str, int] = {}
    if not text:
        return out
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, count = token.partition("=")
        if kind not in ("crash", "timeout"):
            raise ValueError(f"unknown chaos kind {kind!r} "
                             "(expected crash=N or timeout=N)")
        out[kind] = int(count or 1)
    return out


@dataclass
class CellTask:
    index: int
    scenario: str
    params: Dict[str, Any]
    attempts: int = 0
    not_before: float = 0.0  # monotonic instant gating the retry
    enqueued_at: float = 0.0  # monotonic instant the task became runnable


@dataclass
class CellOutcome:
    index: int
    scenario: str
    params: Dict[str, Any]
    status: str  # "ok" | "failed"
    result: Any = None
    error: Optional[str] = None
    attempts: int = 1
    elapsed_s: float = 0.0  # busy time of the successful attempt
    retry_log: List[str] = field(default_factory=list)
    # Telemetry (summed over attempts; RSS is the max across them).
    queue_wait_s: float = 0.0  # runnable-but-unassigned time
    backoff_s: float = 0.0  # retry backoff delays
    peak_rss_kb: int = 0  # worker peak RSS while computing the cell


def _worker_main(conn, worker_id: int, chaos_crash, chaos_timeout,
                 stall_s: float) -> None:
    """One worker: receive (task) tuples, compute, send results."""
    from repro.sweep.registry import compute_cell

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        _, index, scenario, params = msg
        if chaos_crash is not None:
            with chaos_crash.get_lock():
                take = chaos_crash.value > 0
                if take:
                    chaos_crash.value -= 1
            if take:
                os._exit(42)  # simulated hard crash mid-cell
        if chaos_timeout is not None:
            with chaos_timeout.get_lock():
                take = chaos_timeout.value > 0
                if take:
                    chaos_timeout.value -= 1
            if take:
                time.sleep(stall_s)  # stall past the per-cell deadline
        t0 = time.perf_counter()
        try:
            payload = compute_cell(scenario, params)
            conn.send(("ok", index, payload, time.perf_counter() - t0,
                       _peak_rss_kb()))
        except BaseException:
            err = traceback.format_exc(limit=30)
            try:
                conn.send(("err", index, err, time.perf_counter() - t0,
                           _peak_rss_kb()))
            except (BrokenPipeError, OSError):
                return


class _WorkerSlot:
    def __init__(self, ctx, worker_id: int, chaos_crash, chaos_timeout,
                 stall_s: float):
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, chaos_crash, chaos_timeout, stall_s),
            daemon=True,
            name=f"sweep-worker-{worker_id}",
        )
        self.proc.start()
        child_conn.close()
        self.task: Optional[CellTask] = None
        self.deadline = float("inf")
        self.assigned_at = 0.0
        self.busy_s = 0.0  # accumulated busy time (utilization)

    @property
    def idle(self) -> bool:
        return self.task is None

    def assign(self, task: CellTask, timeout_s: float) -> None:
        now = time.monotonic()
        self.task = task
        self.assigned_at = now
        self.deadline = now + timeout_s
        self.conn.send(("task", task.index, task.scenario, task.params))

    def release(self) -> None:
        self.busy_s += time.monotonic() - self.assigned_at
        self.task = None
        self.deadline = float("inf")

    def kill(self) -> None:
        if self.task is not None:
            self.release()
        try:
            self.proc.kill()
        except (OSError, AttributeError):
            pass
        self.proc.join(timeout=5.0)
        self.conn.close()

    def shutdown(self) -> None:
        try:
            self.conn.send(_EXIT)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        self.conn.close()


class SweepExecutor:
    """Run cells on a supervised pool; see the module docstring."""

    def __init__(
        self,
        jobs: int = 2,
        timeout_s: float = 600.0,
        retries: int = 2,
        backoff_s: float = 0.25,
        chaos: Optional[Dict[str, int]] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.timeout_s = float(timeout_s)
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        if chaos is None:
            chaos = parse_chaos(os.environ.get("REPRO_SWEEP_CHAOS"))
        self.chaos = chaos
        self.workers_spawned = 0
        self.workers_replaced = 0
        self.utilization = 0.0
        self._retired_busy_s = 0.0

    # -- internals -----------------------------------------------------

    def _ctx(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None)

    def _spawn(self, ctx, chaos_crash, chaos_timeout) -> _WorkerSlot:
        slot = _WorkerSlot(ctx, self.workers_spawned, chaos_crash,
                           chaos_timeout, stall_s=self.timeout_s + 5.0)
        self.workers_spawned += 1
        return slot

    def _replace(self, slots, i, ctx, chaos_crash, chaos_timeout) -> None:
        slot = slots[i]
        slot.kill()
        self._retired_busy_s += slot.busy_s
        slots[i] = self._spawn(ctx, chaos_crash, chaos_timeout)
        self.workers_replaced += 1

    def _requeue_or_fail(self, task: CellTask, reason: str, pending,
                         outcomes, events) -> None:
        task.attempts += 1
        if task.attempts <= self.retries:
            delay = self.backoff_s * (2.0 ** (task.attempts - 1))
            task.enqueued_at = time.monotonic()
            task.not_before = task.enqueued_at + delay
            out = outcomes[task.index]
            out.backoff_s += delay
            out.retry_log.append(reason)
            pending.append(task)
            events(
                {"type": "retry", "index": task.index, "reason": reason,
                 "attempt": task.attempts, "backoff_s": delay})
        else:
            out = outcomes[task.index]
            out.status = "failed"
            out.error = reason
            out.attempts = task.attempts
            events({"type": "failed", "index": task.index, "reason": reason})

    # -- main loop -----------------------------------------------------

    def run(self, tasks: List[CellTask],
            on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
            ) -> List[CellOutcome]:
        events = on_event or (lambda e: None)
        outcomes = {
            t.index: CellOutcome(index=t.index, scenario=t.scenario,
                                 params=t.params, status="pending")
            for t in tasks
        }
        pending: List[CellTask] = list(tasks)
        t_enqueue = time.monotonic()
        for t in pending:
            t.enqueued_at = t_enqueue
        done = 0
        total = len(tasks)
        if total == 0:
            self.utilization = 0.0
            return []

        ctx = self._ctx()
        chaos_crash = (ctx.Value("i", self.chaos.get("crash", 0))
                       if self.chaos.get("crash") else None)
        chaos_timeout = (ctx.Value("i", self.chaos.get("timeout", 0))
                         if self.chaos.get("timeout") else None)

        n_workers = min(self.jobs, total)
        slots = [self._spawn(ctx, chaos_crash, chaos_timeout)
                 for _ in range(n_workers)]
        t_start = time.monotonic()

        def finish(slot: _WorkerSlot, kind: str, payload, elapsed: float,
                   rss_kb: int = 0):
            nonlocal done
            task = slot.task
            slot.release()
            out = outcomes[task.index]
            if rss_kb > out.peak_rss_kb:
                out.peak_rss_kb = rss_kb
            if kind == "ok":
                out.status = "ok"
                out.result = payload
                out.elapsed_s = elapsed
                out.attempts = task.attempts + 1
                done += 1
                events({"type": "ok", "index": task.index,
                        "elapsed_s": elapsed, "attempt": out.attempts,
                        "worker": slot.id})
            else:
                self._requeue_or_fail(
                    task, f"error in cell:\n{payload}", pending, outcomes,
                    events)
                if outcomes[task.index].status == "failed":
                    done += 1

        try:
            while done < total:
                now = time.monotonic()
                # Assign ready tasks to idle workers.
                for slot in slots:
                    if not slot.idle or not pending:
                        continue
                    ready = [t for t in pending if t.not_before <= now]
                    if not ready:
                        continue
                    task = min(ready, key=lambda t: t.index)
                    pending.remove(task)
                    outcomes[task.index].queue_wait_s += max(
                        0.0, now - max(task.enqueued_at, task.not_before))
                    slot.assign(task, self.timeout_s)
                    events({"type": "start", "index": task.index,
                            "attempt": task.attempts + 1, "worker": slot.id})

                busy = [s for s in slots if not s.idle]
                if not busy:
                    if pending:
                        sleep_until = min(t.not_before for t in pending)
                        time.sleep(max(0.0, min(sleep_until - now, 0.5)))
                        continue
                    break  # nothing running, nothing pending

                next_deadline = min(s.deadline for s in busy)
                wait_s = max(0.0, min(next_deadline - now, 0.25))
                readable = conn_wait(
                    [s.conn for s in busy] + [s.proc.sentinel for s in busy],
                    timeout=wait_s)
                ready_set = set(readable)
                now = time.monotonic()

                for i, slot in enumerate(slots):
                    if slot.idle:
                        continue
                    if slot.conn in ready_set:
                        try:
                            msg = slot.conn.recv()
                            kind, _idx, payload, elapsed = msg[:4]
                            rss_kb = msg[4] if len(msg) > 4 else 0
                        except (EOFError, OSError):
                            # Died between send and our read: treat as crash.
                            task = slot.task
                            self._replace(slots, i, ctx, chaos_crash,
                                          chaos_timeout)
                            self._requeue_or_fail(
                                task, "worker crashed mid-cell", pending,
                                outcomes, events)
                            if outcomes[task.index].status == "failed":
                                done += 1
                            continue
                        finish(slot, kind, payload, elapsed, rss_kb)
                    elif slot.proc.sentinel in ready_set and not slot.proc.is_alive():
                        task = slot.task
                        exitcode = slot.proc.exitcode
                        self._replace(slots, i, ctx, chaos_crash,
                                      chaos_timeout)
                        self._requeue_or_fail(
                            task, f"worker crashed (exit {exitcode})",
                            pending, outcomes, events)
                        if outcomes[task.index].status == "failed":
                            done += 1
                    elif now > slot.deadline:
                        task = slot.task
                        self._replace(slots, i, ctx, chaos_crash,
                                      chaos_timeout)
                        self._requeue_or_fail(
                            task,
                            f"cell timeout after {self.timeout_s:.1f}s",
                            pending, outcomes, events)
                        if outcomes[task.index].status == "failed":
                            done += 1
        finally:
            wall = max(time.monotonic() - t_start, 1e-9)
            busy_total = self._retired_busy_s + sum(s.busy_s for s in slots)
            self.utilization = min(1.0, busy_total / (wall * n_workers))
            for slot in slots:
                slot.shutdown()

        return [outcomes[t.index] for t in tasks]
