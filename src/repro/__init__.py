"""Reproduction of *Improving MPI Application Communication Time with an
Introspection Monitoring Library* (Jeannot & Sartori, Inria RR-9292 /
IPDPS-W 2020).

The package is organised as:

``repro.simmpi``
    A deterministic, simulated MPI runtime.  Collective operations are
    implemented on top of the simulator's point-to-point layer, so the
    monitoring component observes collectives *after* decomposition into
    point-to-point messages — the same vantage point as the Open MPI
    monitoring component the paper builds on.

``repro.core``
    The paper's contribution: the ``MPI_M`` introspection monitoring
    library (sessions, data accessors, flush files) implemented strictly
    against the simulated MPI_T interface, plus a Pythonic
    context-manager front-end.

``repro.placement``
    TreeMatch process placement, baseline mappers, placement metrics, and
    the paper's dynamic rank-reordering algorithm (Fig. 1).

``repro.apps``
    Workloads: the NAS CG kernel (paper §6.5), a halo-exchange stencil,
    and the grouped-allgather micro-benchmark (paper §6.4).

``repro.experiments``
    One driver per paper table/figure; see DESIGN.md for the index.
"""

__version__ = "1.0.0"

from repro.simmpi import Cluster, Engine  # noqa: F401
from repro.core import (  # noqa: F401
    MonitoringError,
    MonitoringSession,
    mpi_m_allgather_data,
    mpi_m_continue,
    mpi_m_finalize,
    mpi_m_flush,
    mpi_m_free,
    mpi_m_get_data,
    mpi_m_get_info,
    mpi_m_init,
    mpi_m_reset,
    mpi_m_rootflush,
    mpi_m_rootgather_data,
    mpi_m_start,
    mpi_m_suspend,
)
