"""Engine-side instrumentation: the bridge from simulator to obs.

:class:`EngineObserver` is created by :class:`~repro.simmpi.engine.Engine`
at construction time — only when the layer is enabled, so disabled
engines carry a plain ``None`` and pay nothing.  It does three things:

* chains a per-message hook onto ``pml.trace_hook`` that accumulates
  per-link-class message/byte/latency totals in plain Python lists (the
  ``hook is not None`` branch is one the PML already pays, so enabling
  obs adds no new branch to the per-message path);
* samples cheap signals on the engine's *per-wait* paths (ready-queue
  depth at block time, PML batch segment counts at close);
* publishes everything into the metrics registry once, at
  :meth:`run_finished`, together with the engine's own counters
  (switches, messages, deferred sends, elided handoffs) and the
  per-category monitoring totals.
"""

from __future__ import annotations

from repro import obs
from repro.simmpi.pml_monitoring import CATEGORIES

__all__ = ["EngineObserver"]

#: Ready-queue depths are small (bounded by world size); batch sizes by
#: the largest per-peer segment count.
_DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class EngineObserver:
    """Per-engine recorder; one instance per instrumented Engine."""

    __slots__ = (
        "engine", "registry", "spans",
        "_depth_hist", "_depth_max",
        "_link_msgs", "_link_bytes", "_link_lat",
    )

    def __init__(self, engine):
        self.engine = engine
        self.registry = obs.registry()
        self.spans = obs.spans()
        self._depth_hist = self.registry.histogram(
            "repro_engine_ready_queue_depth", buckets=_DEPTH_BUCKETS)
        self._depth_max = 0
        net = engine.network
        n_classes = len(net.route_classes)
        # Per-link-class accumulators, indexed like route_classes; the
        # chained hook below bumps these per message and run_finished
        # publishes them as labelled counters.
        self._link_msgs = [0] * n_classes
        self._link_bytes = [0] * n_classes
        self._link_lat = [0.0] * n_classes
        self._install_link_hook()
        engine.pml._obs_batch_hist = self.registry.histogram(
            "repro_pml_batch_segments", buckets=_BATCH_BUCKETS)

    # -- per-message (rides the PML trace hook) ---------------------------

    def _install_link_hook(self) -> None:
        pml = self.engine.pml
        net = self.engine.network
        prev = pml.trace_hook
        clsidx = net._clsidx_l
        alpha = net._alpha_l
        n = net._n_ranks
        msgs = self._link_msgs
        byts = self._link_bytes
        lats = self._link_lat

        def hook(t, src, dst, nbytes, category, count):
            pair = src * n + dst
            i = clsidx[pair]
            msgs[i] += count
            byts[i] += nbytes
            lats[i] += alpha[pair] * count
            if prev is not None:
                prev(t, src, dst, nbytes, category, count)

        pml.trace_hook = hook

    # -- per-wait sampling -------------------------------------------------

    def note_block(self, depth: int) -> None:
        """Ready-queue depth observed as a rank parks (per wait)."""
        self._depth_hist.observe(depth)
        if depth > self._depth_max:
            self._depth_max = depth

    # -- run lifecycle -----------------------------------------------------

    def run_started(self) -> None:
        if self.spans is not None:
            self.spans.wall_begin("engine.run",
                                  {"n_ranks": self.engine.n_ranks,
                                   "handoff": self.engine.handoff})

    def run_finished(self) -> None:
        if self.spans is not None:
            self.spans.wall_end()
        self._publish()

    def _publish(self) -> None:
        reg = self.registry
        eng = self.engine
        net = eng.network
        reg.counter("repro_engine_runs_total").inc()
        reg.counter("repro_engine_context_switches_total").inc(eng._switches)
        # Paired with context_switches_total: on the event-driven core
        # each "switch" is a generator resume on the scheduler thread;
        # on the threaded core the pair is degenerate (resumes ==
        # switches by definition).  Divergence between the two counters
        # on an event run would mean the scheduler resumed a rank
        # outside the baton order — the bit-exactness invariant.
        reg.counter("repro_engine_resumes_total").inc(eng.resumes)
        if eng.max_clock > 0:
            reg.gauge("repro_engine_resumes_per_virtual_second").set_max(
                eng.resumes / eng.max_clock)
        reg.counter("repro_engine_messages_total").inc(net.n_messages)
        reg.counter("repro_engine_deferred_sends_total").inc(eng._qseq)
        reg.counter("repro_engine_handoffs_elided_total",
                    kind="self").inc(eng._self_handoffs)
        reg.counter("repro_engine_handoffs_elided_total",
                    kind="phantom").inc(eng._phantom_elisions)
        reg.gauge("repro_engine_ready_queue_depth_max").set_max(
            self._depth_max)
        reg.gauge("repro_engine_virtual_makespan_seconds").set_max(
            eng.max_clock)
        for i, cls in enumerate(net.route_classes):
            if self._link_msgs[i]:
                reg.counter("repro_net_link_messages_total",
                            link=cls).inc(self._link_msgs[i])
                reg.counter("repro_net_link_bytes_total",
                            link=cls).inc(self._link_bytes[i])
                reg.counter("repro_net_link_latency_seconds_total",
                            link=cls).inc(self._link_lat[i])
        # totals() flushes; pml.sync no-ops on the main thread so this
        # is safe after the run has drained.
        for cat in CATEGORIES:
            n_msg, n_bytes = eng.pml.totals(cat)
            reg.counter("repro_pml_recorded_messages_total",
                        category=cat).inc(n_msg)
            reg.counter("repro_pml_recorded_bytes_total",
                        category=cat).inc(n_bytes)
            reg.gauge("repro_pml_epoch", category=cat).set_max(
                eng.pml.epoch(cat))
