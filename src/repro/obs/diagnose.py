"""Automated "why is this slow" diagnosis over a cross-layer timeline.

Four detector passes consume a :class:`repro.obs.timeline.Timeline`
and emit structured findings:

``congested_links``
    Per-link-class bytes·latency scores compared against the median of
    the sibling classes: a class whose score is both a large multiple
    of its siblings' and a large share of the total is where the run's
    wire time concentrates (the paper's Fig. 4/Fig. 5 motivation —
    cross-node traffic dominating).

``stragglers``
    Per-rank late-arrival share at collective begin markers.  Arrival
    times come from replay-trace ``B`` markers (every participant of a
    communicator reaches its collectives in the same order, so
    instances match world-wide); a rank is *late* at an instance when
    its arrival trails the median by more than
    ``max(rel·IQR, min_seconds, makespan_frac·makespan)``.

``alg_mismatch``
    Recorded collective algorithm (or the library default when the
    call did not pin one) vs the best-known choice for the message
    size and communicator size, distilled from the Fig. 5 sweep grid.

``stalls``
    Long receive-waits whose window has an (almost) empty in-flight
    set: the waiting rank starved because the sender had not issued
    the data, i.e. serialization, not bandwidth.

The report is a schema-versioned JSON document
(:data:`REPORT_SCHEMA`); :func:`validate_report` checks the structural
contract CI relies on, and :func:`render_report` produces the terminal
view via :mod:`repro.core.viz`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.timeline import Timeline

__all__ = [
    "REPORT_SCHEMA", "REPORT_KIND", "PASSES", "SEVERITIES",
    "DiagnosisConfig", "Finding",
    "default_algorithm", "best_known_algorithm",
    "detect_congested_links", "detect_stragglers",
    "detect_alg_mismatch", "detect_stalls",
    "diagnose", "validate_report", "render_report",
]

#: Diagnosis-report JSON schema version (same discipline as the replay
#: trace and metrics snapshot formats).
REPORT_SCHEMA = 1
REPORT_KIND = "repro.obs.diagnosis"

PASSES = ("congested_links", "stragglers", "alg_mismatch", "stalls")
SEVERITIES = ("info", "warning", "critical")


@dataclass
class DiagnosisConfig:
    """Detector thresholds (documented in DESIGN.md §4.6)."""

    # congested_links: flag a class whose bytes·latency score is both
    # >= factor x the sibling median and >= min_share of the total.
    congestion_factor: float = 4.0
    congestion_min_share: float = 0.5

    # stragglers: lateness threshold is max(rel*IQR, min_seconds,
    # makespan_frac*makespan); a rank is flagged when it is late at >=
    # late_share of >= min_instances instances it participates in.
    straggler_rel_iqr: float = 3.0
    straggler_min_seconds: float = 0.0
    straggler_makespan_frac: float = 0.02
    straggler_late_share: float = 0.5
    straggler_min_instances: int = 2

    # alg_mismatch: ignore collectives smaller than this (algorithm
    # choice is latency-bound noise below it).
    alg_min_bytes: int = 1_000_000

    # stalls: a wait is a candidate when it lasts >= max(min_seconds,
    # min_fraction*makespan) and its in-flight coverage leaves >=
    # empty_share of the window empty.
    stall_min_seconds: float = 0.0
    stall_min_fraction: float = 0.05
    stall_empty_share: float = 0.9
    stall_max_findings: int = 8


@dataclass
class Finding:
    """One structured diagnosis finding."""

    pass_name: str
    severity: str
    subject: str
    summary: str
    t0: float = 0.0
    t1: float = 0.0
    detail: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["pass"] = d.pop("pass_name")
        if d["detail"] is None:
            d.pop("detail")
        return d


# ---------------------------------------------------------------------------
# the fig5 best-known-algorithm grid


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def default_algorithm(op: str, comm_size: int) -> Optional[str]:
    """What the library runs when the caller passes ``algorithm=None``
    (recorded as ``""`` in replay traces)."""
    if op in ("reduce", "bcast", "gather", "scatter"):
        return "binomial"
    if op == "barrier":
        return "dissemination"
    if op == "alltoall":
        return "pairwise"
    if op == "allgather":
        return "recursive_doubling" if _is_pow2(comm_size) else "ring"
    if op == "allreduce":
        return "recursive_doubling" if _is_pow2(comm_size) else "reduce_bcast"
    return None


def best_known_algorithm(op: str, nbytes: int,
                         comm_size: int) -> Optional[str]:
    """Best-known algorithm for (op, size, world), distilled from the
    Fig. 5 sweep grid.

    The only size-sensitive switch the grid exposes is the reduce: the
    pipelined in-order binary tree (two children per node, more
    pipeline parallelism) overtakes the binomial tree once buffers are
    large enough to keep both subtrees busy (>= ~4 MB at the paper's
    segment size); below that the binomial tree's shallower depth wins.
    Everything else matches the library defaults.  Returns ``None``
    when the grid has no opinion (unknown op).
    """
    if op == "reduce":
        return "binary" if nbytes >= 4_000_000 else "binomial"
    return default_algorithm(op, comm_size)


# ---------------------------------------------------------------------------
# detectors


def detect_congested_links(tl: Timeline,
                           cfg: DiagnosisConfig) -> List[Finding]:
    classes = tl.link_classes()
    scores: Dict[str, float] = {}
    for cls in classes:
        nbytes = tl.link_bytes(cls)
        alpha = tl.link_alpha.get(cls, 0.0)
        # bytes weighted by per-message latency class: where the wire
        # time (not just the volume) concentrates.
        scores[cls] = nbytes * alpha
    live = {c: s for c, s in scores.items() if s > 0}
    if len(live) < 2:
        return []
    total = sum(live.values())
    out: List[Finding] = []
    for cls, score in sorted(live.items(), key=lambda kv: -kv[1]):
        siblings = [s for c, s in live.items() if c != cls]
        med = float(np.median(siblings))
        share = score / total
        if med <= 0 or score < cfg.congestion_factor * med:
            continue
        if share < cfg.congestion_min_share:
            continue
        t0, t1 = tl.counter(f"link:bytes:{cls}").window_of_mass()
        out.append(Finding(
            pass_name="congested_links",
            severity="critical" if share >= 0.8 else "warning",
            subject=cls,
            summary=(f"link class '{cls}' carries "
                     f"{share:.0%} of the bytes*latency cost "
                     f"({score / med:.1f}x the sibling median)"),
            t0=t0, t1=t1,
            detail={"bytes": tl.link_bytes(cls),
                    "alpha_seconds": tl.link_alpha.get(cls, 0.0),
                    "score": score, "sibling_median": med,
                    "share": share},
        ))
    return out


def detect_stragglers(tl: Timeline, cfg: DiagnosisConfig) -> List[Finding]:
    late_by_rank: Dict[int, int] = {}
    seen_by_rank: Dict[int, int] = {}
    lateness_by_rank: Dict[int, List[float]] = {}
    for inst in tl.collectives:
        arrivals = inst.arrivals
        if len(arrivals) < 2:
            continue
        vals = np.asarray(list(arrivals.values()))
        med = float(np.median(vals))
        iqr = float(np.percentile(vals, 75) - np.percentile(vals, 25))
        thresh = max(cfg.straggler_rel_iqr * iqr,
                     cfg.straggler_min_seconds,
                     cfg.straggler_makespan_frac * tl.makespan)
        for rank, arr in arrivals.items():
            seen_by_rank[rank] = seen_by_rank.get(rank, 0) + 1
            if arr - med > thresh:
                late_by_rank[rank] = late_by_rank.get(rank, 0) + 1
                lateness_by_rank.setdefault(rank, []).append(arr - med)
    out: List[Finding] = []
    for rank, n_late in sorted(late_by_rank.items(),
                               key=lambda kv: -kv[1]):
        n_seen = seen_by_rank[rank]
        share = n_late / n_seen
        if n_seen < cfg.straggler_min_instances:
            continue
        if share < cfg.straggler_late_share:
            continue
        mean_late = float(np.mean(lateness_by_rank[rank]))
        out.append(Finding(
            pass_name="stragglers",
            severity="critical" if share >= 0.9 else "warning",
            subject=f"rank {rank}",
            summary=(f"rank {rank} arrived late at {n_late}/{n_seen} "
                     f"collectives (mean lateness {mean_late:.3g}s)"),
            t0=0.0, t1=tl.makespan,
            detail={"rank": rank, "late": n_late, "instances": n_seen,
                    "share": share, "mean_lateness_seconds": mean_late},
        ))
    return out


def detect_alg_mismatch(tl: Timeline, cfg: DiagnosisConfig) -> List[Finding]:
    grouped: Dict[tuple, Dict[str, Any]] = {}
    for inst in tl.collectives:
        if inst.nbytes < cfg.alg_min_bytes:
            continue
        size = len(inst.ranks) or tl.world_size
        used = inst.alg or default_algorithm(inst.op, size)
        best = best_known_algorithm(inst.op, inst.nbytes, size)
        if used is None or best is None or used == best:
            continue
        key = (inst.op, used, best)
        g = grouped.setdefault(key, {"count": 0, "bytes": 0,
                                     "t0": inst.t_end, "t1": inst.t_end,
                                     "max_nbytes": 0, "comm_size": size})
        g["count"] += 1
        g["bytes"] += inst.nbytes
        g["max_nbytes"] = max(g["max_nbytes"], inst.nbytes)
        first_arrival = min(inst.arrivals.values()) if inst.arrivals else 0.0
        g["t0"] = min(g["t0"], first_arrival)
        g["t1"] = max(g["t1"], inst.t_end)
    out: List[Finding] = []
    for (op, used, best), g in sorted(grouped.items(),
                                      key=lambda kv: -kv[1]["bytes"]):
        out.append(Finding(
            pass_name="alg_mismatch",
            severity="warning",
            subject=op,
            summary=(f"{g['count']} {op} call(s) up to "
                     f"{g['max_nbytes']:,} B ran '{used}' where the "
                     f"fig5 grid prefers '{best}'"),
            t0=g["t0"], t1=g["t1"],
            detail={"op": op, "algorithm": used, "best_known": best,
                    "calls": g["count"], "total_bytes": g["bytes"],
                    "max_nbytes": g["max_nbytes"],
                    "comm_size": g["comm_size"]},
        ))
    return out


def detect_stalls(tl: Timeline, cfg: DiagnosisConfig) -> List[Finding]:
    if tl.messages is None:
        return []
    min_dur = max(cfg.stall_min_seconds,
                  cfg.stall_min_fraction * tl.makespan)
    if min_dur <= 0:
        return []
    out: List[Finding] = []
    for w in sorted(tl.waits, key=lambda w: -w.duration):
        if w.duration < min_dur:
            break
        covered = tl.inflight_coverage(w.rank, w.t0, w.t1)
        empty = 1.0 - covered / w.duration
        if empty < cfg.stall_empty_share:
            continue
        sender = -1
        issued_at = None
        if 0 <= w.seq < len(tl.messages["src"]):
            sender = int(tl.messages["src"][w.seq])
            t_send = float(tl.messages["t_send"][w.seq])
            if not np.isnan(t_send):
                issued_at = t_send
        frac = w.duration / tl.makespan if tl.makespan else 0.0
        blame = (f"; rank {sender} only issued the awaited send at "
                 f"t={issued_at:.4g}s" if sender >= 0 and issued_at
                 is not None else "")
        out.append(Finding(
            pass_name="stalls",
            severity="critical" if frac >= 0.25 else "warning",
            subject=f"rank {w.rank}",
            summary=(f"rank {w.rank} waited {w.duration:.4g}s "
                     f"({frac:.0%} of the makespan) with the in-flight "
                     f"set {empty:.0%} empty{blame}"),
            t0=w.t0, t1=w.t1,
            detail={"rank": w.rank, "seconds": w.duration,
                    "makespan_fraction": frac, "empty_share": empty,
                    "awaited_seq": w.seq, "sender": sender,
                    "sender_issue_time": issued_at},
        ))
        if len(out) >= cfg.stall_max_findings:
            break
    return out


# ---------------------------------------------------------------------------
# the report


_DETECTORS = {
    "congested_links": detect_congested_links,
    "stragglers": detect_stragglers,
    "alg_mismatch": detect_alg_mismatch,
    "stalls": detect_stalls,
}


def _pass_has_data(tl: Timeline, name: str) -> bool:
    if name == "congested_links":
        return len(tl.link_classes()) >= 2
    if name in ("stragglers", "alg_mismatch"):
        return bool(tl.collectives)
    return bool(tl.waits) and tl.messages is not None


def diagnose(tl: Timeline, config: Optional[DiagnosisConfig] = None,
             meta: Optional[dict] = None) -> Dict[str, Any]:
    """Run every detector pass; returns the report document."""
    cfg = config or DiagnosisConfig()
    findings: List[Finding] = []
    passes: List[Dict[str, Any]] = []
    for name in PASSES:
        ran = _pass_has_data(tl, name)
        found = _DETECTORS[name](tl, cfg) if ran else []
        findings.extend(found)
        passes.append({"name": name, "ran": ran, "findings": len(found)})
    sev_rank = {s: i for i, s in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: (-sev_rank[f.severity], f.t0))
    doc: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "kind": REPORT_KIND,
        "source": tl.source,
        "world_size": tl.world_size,
        "makespan_seconds": tl.makespan,
        "layers": tl.layer_summary(),
        "config": asdict(cfg),
        "passes": passes,
        "findings": [f.to_dict() for f in findings],
    }
    if meta or tl.meta:
        merged = dict(tl.meta)
        merged.update(meta or {})
        doc["meta"] = merged
    return doc


def validate_report(doc: Any) -> List[str]:
    """Structural validation; returns problems (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["report must be a JSON object"]
    if doc.get("kind") != REPORT_KIND:
        errors.append(f"kind must be {REPORT_KIND!r}")
    if doc.get("schema") != REPORT_SCHEMA:
        errors.append(f"schema must be {REPORT_SCHEMA}")
    for key in ("world_size", "makespan_seconds"):
        if not isinstance(doc.get(key), (int, float)):
            errors.append(f"missing numeric {key!r}")
    layers = doc.get("layers")
    if not isinstance(layers, dict) or not (
            {"spans", "counters", "pml", "events"} <= set(layers)):
        errors.append("layers must describe spans/counters/pml/events")
    passes = doc.get("passes")
    if (not isinstance(passes, list)
            or [p.get("name") for p in passes
                if isinstance(p, dict)] != list(PASSES)):
        errors.append(f"passes must list {PASSES} in order")
    else:
        for p in passes:
            if not isinstance(p.get("ran"), bool) or \
                    not isinstance(p.get("findings"), int):
                errors.append(f"pass {p.get('name')!r}: needs bool 'ran' "
                              f"and int 'findings'")
    findings = doc.get("findings")
    if not isinstance(findings, list):
        errors.append("findings must be a list")
        return errors
    for i, f in enumerate(findings):
        if not isinstance(f, dict):
            errors.append(f"finding #{i}: not an object")
            continue
        if f.get("pass") not in PASSES:
            errors.append(f"finding #{i}: unknown pass {f.get('pass')!r}")
        if f.get("severity") not in SEVERITIES:
            errors.append(f"finding #{i}: bad severity "
                          f"{f.get('severity')!r}")
        for key in ("subject", "summary"):
            if not isinstance(f.get(key), str) or not f.get(key):
                errors.append(f"finding #{i}: missing {key!r}")
        t0, t1 = f.get("t0"), f.get("t1")
        if not isinstance(t0, (int, float)) or \
                not isinstance(t1, (int, float)) or t1 < t0:
            errors.append(f"finding #{i}: bad window [{t0!r}, {t1!r}]")
    return errors


def render_report(doc: Dict[str, Any]) -> str:
    """Terminal rendering of a diagnosis report."""
    from repro.core.viz import render_bars, render_findings

    layers = doc["layers"]
    lines = [
        f"why-is-this-slow report ({doc['source']} source, "
        f"{doc['world_size']} ranks, "
        f"makespan {doc['makespan_seconds']:.4g}s)",
        f"  layers: {layers['spans']['rows']} spans | "
        f"{layers['counters']['series']} counter series | "
        f"pml epochs "
        + "/".join(str(layers["pml"].get(c, {}).get("epoch", 0))
                   for c in ("p2p", "coll", "osc"))
        + f" | {layers['events']['messages']} messages, "
        f"{layers['events']['collectives']} collectives",
    ]
    by_cls = {
        f["subject"]: f["detail"]["bytes"]
        for f in doc["findings"]
        if f["pass"] == "congested_links" and "detail" in f
    }
    if by_cls:
        lines.append(render_bars(sorted(by_cls.items(),
                                        key=lambda kv: -kv[1]),
                                 title="  congested link bytes"))
    ran = [p["name"] for p in doc["passes"] if p["ran"]]
    skipped = [p["name"] for p in doc["passes"] if not p["ran"]]
    lines.append("  passes ran: " + (", ".join(ran) or "none")
                 + (f" (skipped: {', '.join(skipped)})" if skipped else ""))
    lines.append(render_findings(doc["findings"]))
    return "\n".join(lines)
