"""Chrome trace-event export (the JSON Perfetto and chrome://tracing load).

Mapping:

* ``pid`` 1 — *simmpi virtual time*: one thread lane per world rank
  (``tid`` = rank), timestamps are virtual seconds converted to the
  format's microseconds;
* ``pid`` 2 — *simulator wall clock*: the recorder's self-profile lane
  (``tid`` 0), so host-side cost is visually separable from simulated
  time in the same trace;
* ``pid`` 3 — *diagnosis findings*: one span per finding from
  :mod:`repro.obs.diagnose`, anchored at its evidence window;
* spans are complete events (``ph: "X"`` with ``ts``/``dur``), lanes
  are named via ``ph: "M"`` metadata events, and cross-layer counter
  series (per-link-class bytes, in-flight message depth) render as
  counter tracks (``ph: "C"``), exactly as the trace-event format
  specifies.

:func:`validate_chrome_trace` checks the structural contract the
acceptance criteria (and the CI ``obs-smoke`` job) rely on; it returns
a list of human-readable problems, empty when the document is valid.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.spans import WALL_LANE, SpanRecorder

__all__ = [
    "VIRTUAL_PID", "WALL_PID", "WALL_TID", "FINDINGS_PID",
    "chrome_trace", "chrome_trace_from_timeline",
    "validate_chrome_trace", "write_chrome_trace",
]

VIRTUAL_PID = 1
WALL_PID = 2
WALL_TID = 0
FINDINGS_PID = 3

_S_TO_US = 1e6

#: Counter tracks are downsampled to this many points per series (last
#: point always kept, so the final total is exact): a fig5 cell emits
#: ~10^5 per-message samples, which would dwarf the span payload.
_MAX_COUNTER_POINTS = 512


def _meta(name: str, pid: int, tid: int, value: str) -> Dict[str, Any]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": value}}


def _counter_events(timeline) -> List[Dict[str, Any]]:
    """``ph:"C"`` tracks for a timeline's link-byte and in-flight
    series, downsampled to :data:`_MAX_COUNTER_POINTS` each."""
    events: List[Dict[str, Any]] = []
    tracks = [(f"link bytes [{key[len('link:bytes:'):]}]", key, "bytes")
              for key in timeline.counter_keys("link:bytes:")]
    if "net:inflight" in timeline.counters:
        tracks.append(("in-flight messages", "net:inflight", "depth"))
    for title, key, field in tracks:
        series = timeline.counter(key)
        n = len(series)
        if not n:
            continue
        stride = max(1, -(-n // _MAX_COUNTER_POINTS))
        idx = list(range(0, n, stride))
        if idx[-1] != n - 1:
            idx.append(n - 1)
        for i in idx:
            events.append({
                "name": title, "ph": "C", "pid": VIRTUAL_PID, "tid": 0,
                "ts": float(series.times[i]) * _S_TO_US,
                "args": {field: float(series.values[i])},
            })
    return events


def _finding_events(findings) -> List[Dict[str, Any]]:
    """The findings lane: one span per finding at its evidence window."""
    if not findings:
        return []
    events: List[Dict[str, Any]] = [
        _meta("process_name", FINDINGS_PID, 0, "diagnosis findings"),
        _meta("thread_name", FINDINGS_PID, 0, "findings"),
    ]
    for f in findings:
        t0 = float(f.get("t0", 0.0))
        t1 = max(float(f.get("t1", 0.0)), t0)
        events.append({
            "name": f"{f['pass']}: {f['subject']}",
            "cat": "diagnosis", "ph": "X",
            "ts": t0 * _S_TO_US, "dur": (t1 - t0) * _S_TO_US,
            "pid": FINDINGS_PID, "tid": 0,
            "args": {"severity": f["severity"], "summary": f["summary"]},
        })
    return events


def chrome_trace(recorder: SpanRecorder, n_ranks: Optional[int] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 timeline=None, findings=None) -> Dict[str, Any]:
    """Build the trace document from a recorder's finished spans.

    ``n_ranks`` forces a named lane per world rank even for ranks that
    never opened a span (so the Perfetto view always shows the full
    world); extra integer lanes seen in the data are named too.

    ``timeline`` (a :class:`repro.obs.timeline.Timeline`) adds counter
    tracks for its link-byte and in-flight series; ``findings`` (the
    ``findings`` list of a :func:`repro.obs.diagnose.diagnose` report)
    adds the diagnosis lane, so reports are visually anchored in the
    trace.
    """
    rank_lanes = set(range(n_ranks)) if n_ranks else set()
    for lane in recorder.lanes():
        if isinstance(lane, int):
            rank_lanes.add(lane)

    events: List[Dict[str, Any]] = [
        _meta("process_name", VIRTUAL_PID, 0, "simmpi virtual time"),
        _meta("process_name", WALL_PID, WALL_TID,
              "simulator wall clock (self-profile)"),
        _meta("thread_name", WALL_PID, WALL_TID, "wall"),
    ]
    for rank in sorted(rank_lanes):
        events.append(_meta("thread_name", VIRTUAL_PID, rank, f"rank {rank}"))
        events.append({"name": "thread_sort_index", "ph": "M",
                       "pid": VIRTUAL_PID, "tid": rank,
                       "args": {"sort_index": rank}})

    for lane, name, t0, t1, depth, args in recorder.finished:
        if lane == WALL_LANE:
            pid, tid, cat = WALL_PID, WALL_TID, "wall"
        else:
            pid, tid, cat = VIRTUAL_PID, int(lane), "virtual"
        ev: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": t0 * _S_TO_US, "dur": (t1 - t0) * _S_TO_US,
            "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = dict(args)
        events.append(ev)

    if timeline is not None:
        events.extend(_counter_events(timeline))
    events.extend(_finding_events(findings))

    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["otherData"] = dict(meta)
    return doc


def chrome_trace_from_timeline(timeline, meta: Optional[Dict[str, Any]] = None,
                               findings=None) -> Dict[str, Any]:
    """Chrome trace built from a :class:`~repro.obs.timeline.Timeline`
    alone — the ``--trace-in`` path, where spans were reconstructed
    from a replay trace and no live recorder exists."""
    rec = SpanRecorder()
    rec.finished = timeline.as_finished_spans()
    return chrome_trace(rec, n_ranks=timeline.world_size, meta=meta,
                        timeline=timeline, findings=findings)


def validate_chrome_trace(doc: Any,
                          n_ranks: Optional[int] = None) -> List[str]:
    """Structural validation; returns problems (empty list == valid).

    With ``n_ranks``, additionally requires one named virtual-time lane
    per world rank plus the wall-clock self-profile lane.
    """
    errors: List[str] = []
    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' list"]
    named_lanes = set()
    wall_lane_named = False
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event #{i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"event #{i}: missing 'ph'")
            continue
        if not isinstance(ev.get("pid"), int) or \
                not isinstance(ev.get("tid"), int):
            errors.append(f"event #{i}: 'pid'/'tid' must be integers")
            continue
        if ph == "M":
            if ev.get("name") == "thread_name":
                if ev["pid"] == VIRTUAL_PID:
                    named_lanes.add(ev["tid"])
                elif ev["pid"] == WALL_PID:
                    wall_lane_named = True
            continue
        if ph == "X":
            if not isinstance(ev.get("name"), str):
                errors.append(f"event #{i}: 'X' event without a name")
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event #{i}: bad 'ts' {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event #{i}: bad 'dur' {dur!r}")
            continue
        if ph == "C":
            if not isinstance(ev.get("name"), str):
                errors.append(f"event #{i}: 'C' event without a name")
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event #{i}: bad 'ts' {ts!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                errors.append(f"event #{i}: 'C' event needs numeric args")
    if n_ranks is not None:
        missing = sorted(set(range(n_ranks)) - named_lanes)
        if missing:
            errors.append(f"missing virtual-time lanes for ranks {missing}")
        if not wall_lane_named:
            errors.append("missing the wall-clock self-profile lane")
    return errors


def write_chrome_trace(path: str, doc: Dict[str, Any]) -> None:
    from repro.core.flushio import atomic_write

    with atomic_write(path) as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
