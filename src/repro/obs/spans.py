"""Begin/end span tracing over virtual time, plus a wall-clock lane.

A *lane* identifies one timeline: integer lanes are world ranks on the
simulator's virtual clock (seconds of simulated time), and the special
:data:`WALL_LANE` carries host-side self-profile spans measured with
``time.perf_counter`` relative to the recorder's creation.  Keeping the
two in separate lanes (separate Perfetto processes — see
:mod:`repro.obs.export`) is what makes simulator overhead separable
from simulated time.

Spans nest per lane via a stack: ``end`` closes the most recent open
``begin`` on that lane, and the depth at close time is recorded so
exporters and tests can reason about nesting without replaying the
stack.  Only one simulated rank runs at a time (the engine's baton), so
the recorder needs no locking.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["WALL_LANE", "FinishedSpan", "SpanRecorder", "virtual_span"]

#: Lane key for host-side (wall-clock) self-profile spans.
WALL_LANE = "wall"

#: ``(lane, name, t0, t1, depth, args)`` — a closed span.  ``depth`` is
#: the number of spans still open on the lane when this one closed.
FinishedSpan = Tuple[Any, str, float, float, int, Optional[Dict[str, Any]]]


class SpanRecorder:
    """Accumulates closed spans; querying happens post-run."""

    def __init__(self):
        self.finished: List[FinishedSpan] = []
        self._open: Dict[Any, List[Tuple[str, float, Optional[dict]]]] = {}
        self._wall0 = time.perf_counter()

    def __len__(self) -> int:
        return len(self.finished)

    # -- virtual-time lanes ------------------------------------------------

    def begin(self, lane: Any, name: str, t: float,
              args: Optional[dict] = None) -> None:
        stack = self._open.get(lane)
        if stack is None:
            stack = self._open[lane] = []
        stack.append((name, t, args))

    def end(self, lane: Any, t: float) -> str:
        """Close the innermost open span on ``lane``; returns its name.

        A clock that went backwards (it cannot in the simulator, but a
        buggy caller could) is clamped to a zero-duration span rather
        than producing negative durations Perfetto rejects."""
        stack = self._open.get(lane)
        if not stack:
            raise ValueError(f"span end without begin on lane {lane!r}")
        name, t0, args = stack.pop()
        if t < t0:
            t = t0
        self.finished.append((lane, name, t0, t, len(stack), args))
        return name

    def depth(self, lane: Any) -> int:
        return len(self._open.get(lane, ()))

    def lanes(self) -> List[Any]:
        """Every lane that has (or had) spans, finished or open."""
        seen = {s[0] for s in self.finished}
        seen.update(k for k, v in self._open.items() if v)
        return sorted(seen, key=lambda x: (not isinstance(x, int), str(x)))

    # -- the wall-clock self-profile lane ----------------------------------

    def wall_now(self) -> float:
        return time.perf_counter() - self._wall0

    def wall_begin(self, name: str, args: Optional[dict] = None) -> None:
        self.begin(WALL_LANE, name, self.wall_now(), args)

    def wall_end(self) -> str:
        return self.end(WALL_LANE, self.wall_now())

    @contextmanager
    def wall_span(self, name: str, args: Optional[dict] = None):
        self.wall_begin(name, args)
        try:
            yield
        finally:
            self.wall_end()


@contextmanager
def virtual_span(rec: Optional[SpanRecorder], proc, name: str,
                 args: Optional[dict] = None):
    """Span over ``proc``'s virtual clock; no-op when ``rec`` is None.

    Reads ``proc.clock`` raw (no settle): a deferred send still in
    flight is charged to whichever span is open when it materializes,
    which keeps tracing strictly observation-only — the engine's call
    sequence is identical with and without the recorder.
    """
    if rec is None:
        yield
        return
    rec.begin(proc.rank, name, proc.clock, args)
    try:
        yield
    finally:
        rec.end(proc.rank, proc.clock)
