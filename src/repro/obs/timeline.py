"""Cross-layer, virtual-time-indexed timeline store.

The simulator records three independent layers (the paper's §4–§6
stack): NIC hardware counters (:mod:`repro.simmpi.nic`), PML monitoring
matrices and epochs (:mod:`repro.simmpi.pml_monitoring`) and obs spans
(:mod:`repro.obs.spans`).  Each is useful alone, but "why is this run
slow" questions need all of them joined on one clock.  A
:class:`Timeline` is that join: a columnar store of

* per-rank **span intervals** (:class:`SpanTable` — parallel numpy
  columns, names interned),
* per-link-class / per-node **counter series** (:class:`CounterSeries`
  — monotone cumulative step functions over virtual time),
* per-category **PML totals and epochs**,
* and, when a :class:`repro.replay.schema.ReplayTrace` is available,
  the full event-level record: per-message send/arrival times, receive
  waits, collective instances with per-rank arrival times, and local
  computation gaps.

The correlation key is virtual time: every layer's timestamps come from
the same per-rank simulated clocks, so window queries and interval
joins need no clock alignment.

Two ingestion paths build the same store:

* :meth:`Timeline.from_run` — after an instrumented live run (obs
  enabled, optionally a :class:`~repro.simmpi.trace.MessageTracer`
  and/or an ambient replay recording);
* :meth:`Timeline.from_trace` — from a recorded replay trace alone,
  with **no re-simulation**: per-event times are reconstructed from the
  recorded ``t``/``gap`` pairs (the post-clock of event *i* is
  ``t[i+1] - gap[i+1]``; the final ``F`` marker closes the stream), and
  link classes are re-derived from the recorded topology + binding with
  the same depth→class bijection the network model uses.

The diagnosis passes (:mod:`repro.obs.diagnose`) are pure consumers of
this API; hand-built timelines (tests) construct :class:`Timeline`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, NamedTuple, Optional,
                    Sequence, Tuple)

import numpy as np

__all__ = [
    "CounterSeries", "SpanTable", "Span", "Wait", "CollectiveInstance",
    "CriticalSegment", "Timeline",
]


# ---------------------------------------------------------------------------
# columns


class CounterSeries:
    """A monotone cumulative step function over virtual time.

    ``values[i]`` is the running total *after* the event at
    ``times[i]`` — the same shape as a NIC cumulative byte counter, so
    NIC histories ingest without transformation.  Non-cumulative step
    series (in-flight depth) fit too: build them from signed deltas via
    :meth:`from_events`.
    """

    __slots__ = ("times", "values")

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        self.times = np.asarray(times, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have the same length")

    @classmethod
    def from_events(cls, events: Iterable[Tuple[float, float]]
                    ) -> "CounterSeries":
        """Build from (time, delta) samples; deltas at equal times merge."""
        pairs = sorted(events)
        times: List[float] = []
        values: List[float] = []
        total = 0.0
        for t, d in pairs:
            total += d
            if times and times[-1] == t:
                values[-1] = total
            else:
                times.append(t)
                values.append(total)
        return cls(times, values)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def total(self) -> float:
        return float(self.values[-1]) if len(self.values) else 0.0

    def at(self, t: float) -> float:
        """Value of the step function at time ``t`` (right-continuous)."""
        i = int(np.searchsorted(self.times, t, side="right"))
        return float(self.values[i - 1]) if i else 0.0

    def delta(self, t0: float, t1: float) -> float:
        """Increase over the window ``(t0, t1]``."""
        return self.at(t1) - self.at(t0)

    def window_of_mass(self, lo: float = 0.05,
                       hi: float = 0.95) -> Tuple[float, float]:
        """Times bracketing the ``[lo, hi]`` fraction of the final total.

        Localizes *when* a cumulative counter did its growing — the
        window a congestion finding anchors to.
        """
        if not len(self.values) or self.values[-1] <= 0:
            return (0.0, 0.0)
        tot = self.values[-1]
        i0 = int(np.searchsorted(self.values, lo * tot, side="left"))
        i1 = int(np.searchsorted(self.values, hi * tot, side="left"))
        i0 = min(i0, len(self.times) - 1)
        i1 = min(i1, len(self.times) - 1)
        return (float(self.times[i0]), float(self.times[i1]))


class Span(NamedTuple):
    rank: int
    name: str
    t0: float
    t1: float
    depth: int
    args: Optional[dict]


class SpanTable:
    """Columnar span storage: parallel arrays plus an interned name list.

    Rows come from :attr:`repro.obs.spans.SpanRecorder.finished`
    (integer lanes only) or from collective markers reconstructed out
    of a replay trace; either way selection is vectorized over the
    columns and only materializes :class:`Span` rows on demand.
    """

    __slots__ = ("rank", "t0", "t1", "depth", "name_id", "names", "args")

    def __init__(self, rank, t0, t1, depth, name_id,
                 names: List[str], args: List[Optional[dict]]):
        self.rank = np.asarray(rank, dtype=np.int32)
        self.t0 = np.asarray(t0, dtype=np.float64)
        self.t1 = np.asarray(t1, dtype=np.float64)
        self.depth = np.asarray(depth, dtype=np.int16)
        self.name_id = np.asarray(name_id, dtype=np.int32)
        self.names = list(names)
        self.args = list(args)

    @classmethod
    def empty(cls) -> "SpanTable":
        return cls([], [], [], [], [], [], [])

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[int, str, float, float, int,
                                            Optional[dict]]]) -> "SpanTable":
        """Build from ``(rank, name, t0, t1, depth, args)`` tuples."""
        ranks: List[int] = []
        t0s: List[float] = []
        t1s: List[float] = []
        depths: List[int] = []
        ids: List[int] = []
        names: List[str] = []
        intern: Dict[str, int] = {}
        args: List[Optional[dict]] = []
        for rank, name, t0, t1, depth, a in rows:
            nid = intern.get(name)
            if nid is None:
                nid = intern[name] = len(names)
                names.append(name)
            ranks.append(int(rank))
            t0s.append(float(t0))
            t1s.append(float(t1))
            depths.append(int(depth))
            ids.append(nid)
            args.append(a)
        return cls(ranks, t0s, t1s, depths, ids, names, args)

    def __len__(self) -> int:
        return len(self.rank)

    def select(self, t0: Optional[float] = None, t1: Optional[float] = None,
               ranks: Optional[Iterable[int]] = None,
               names: Optional[Iterable[str]] = None) -> np.ndarray:
        """Indices of spans overlapping ``[t0, t1]`` with the given
        rank/name filters (all filters optional)."""
        mask = np.ones(len(self.rank), dtype=bool)
        if t0 is not None:
            mask &= self.t1 >= t0
        if t1 is not None:
            mask &= self.t0 <= t1
        if ranks is not None:
            mask &= np.isin(self.rank, np.asarray(list(ranks)))
        if names is not None:
            wanted = {n for n in names}
            ids = [i for i, n in enumerate(self.names) if n in wanted]
            mask &= np.isin(self.name_id, np.asarray(ids, dtype=np.int32))
        return np.flatnonzero(mask)

    def row(self, i: int) -> Span:
        return Span(int(self.rank[i]), self.names[self.name_id[i]],
                    float(self.t0[i]), float(self.t1[i]),
                    int(self.depth[i]), self.args[i])

    def rows(self, idx: Optional[Iterable[int]] = None) -> List[Span]:
        if idx is None:
            idx = range(len(self))
        return [self.row(int(i)) for i in idx]


@dataclass(frozen=True)
class Wait:
    """One receive-wait interval: ``rank`` blocked on send ``seq``."""

    rank: int
    t0: float
    t1: float
    seq: int = -1

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class CollectiveInstance:
    """One collective call matched across its participating ranks.

    ``index`` is the per-communicator call ordinal (every participant
    reaches the same collectives of a communicator in the same order,
    so ``(comm_id, index)`` identifies the instance world-wide).
    ``arrivals`` maps rank → virtual time at the begin marker — the
    straggler detector's raw material.
    """

    comm_id: int
    index: int
    op: str
    alg: str = ""
    root: int = -1
    nbytes: int = -1
    segments: int = 0
    ranks: Tuple[int, ...] = ()
    arrivals: Dict[int, float] = field(default_factory=dict)
    t_end: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.op}[{self.alg}]" if self.alg else self.op


class CriticalSegment(NamedTuple):
    rank: int
    t0: float
    t1: float
    kind: str  # "send" | "wait" | "osc" | "compute" | "finish"


# ---------------------------------------------------------------------------
# replay-trace event ingestion

#: kind -> (index of t, index of gap) for the timed event tuples.
_TIMED = {"S": (7, 8), "R": (3, 4), "P": (5, 6), "G": (5, 6), "F": (2, 3)}

_KIND_NAME = {"S": "send", "R": "wait", "P": "osc", "G": "osc",
              "F": "finish"}


def _pair_class(pu_a: int, pu_b: int, strides: Sequence[int],
                names: Sequence[str]) -> str:
    """Sharing class of a PU pair — the network model's depth→class
    bijection (0 = "cluster", full depth = "self", else the level
    name), recomputed from the topology strides."""
    depth = len(strides)
    cd = 0
    for s in strides:
        if pu_a // s == pu_b // s:
            cd += 1
    if cd == 0:
        return "cluster"
    if cd == depth:
        return "self"
    return names[cd - 1]


def _ingest_events(world_size: int, events: Sequence[tuple],
                   comms: Dict[int, List[int]],
                   clocks: Sequence[float],
                   topology=None,
                   binding: Optional[Sequence[int]] = None) -> Dict[str, Any]:
    """One pass over a replay event stream → every event-level layer.

    Reconstructs per-event completion times from the recorded
    ``t``/``gap`` pairs: the clock *after* timed event ``i`` of a rank
    is ``t[i+1] - gap[i+1]`` (the ``F`` marker's own ``t`` closes the
    stream), so no re-simulation is needed.
    """
    streams: List[List[tuple]] = [[] for _ in range(world_size)]
    n_sends = 0
    max_seq = -1
    for ev in events:
        streams[ev[1]].append(ev)
        if ev[0] == "S":
            n_sends += 1
            if ev[6] > max_seq:
                max_seq = ev[6]

    n_seq = max_seq + 1
    msg_src = np.full(n_seq, -1, dtype=np.int32)
    msg_dst = np.full(n_seq, -1, dtype=np.int32)
    msg_nbytes = np.zeros(n_seq, dtype=np.int64)
    msg_t_send = np.full(n_seq, np.nan)
    msg_t_recv = np.full(n_seq, np.nan)

    spans_rows: List[tuple] = []
    waits: List[Wait] = []
    gaps: List[Tuple[int, float, float]] = []
    colls: Dict[Tuple[int, int], CollectiveInstance] = {}
    link_events: Dict[str, List[Tuple[float, float]]] = {}
    node_events: Dict[int, List[Tuple[float, float]]] = {}
    pml = {c: {"epoch": 0, "messages": 0, "bytes": 0}
           for c in ("p2p", "coll", "osc")}
    rank_events: List[List[tuple]] = [[] for _ in range(world_size)]
    seq_site: Dict[int, Tuple[int, int]] = {}

    have_topo = topology is not None and binding is not None
    if have_topo:
        strides = [int(s) for s in topology._strides]
        names = topology._names
        pair_cls: Dict[Tuple[int, int], str] = {}

    def link_class(src: int, dst: int) -> Optional[str]:
        if not have_topo:
            return None
        key = (src, dst)
        cls = pair_cls.get(key)
        if cls is None:
            cls = pair_cls[key] = _pair_class(
                binding[src], binding[dst], strides, names)
        return cls

    def charge(src: int, dst: int, nbytes: int, t: float,
               mcat: str) -> None:
        cls = link_class(src, dst)
        if cls is not None:
            link_events.setdefault(cls, []).append((t, float(nbytes)))
            if cls != "self":
                node = binding[src] // strides[0]
                node_events.setdefault(node, []).append((t, float(nbytes)))
        if mcat:
            rec = pml[mcat]
            rec["epoch"] += 1
            rec["messages"] += 1
            rec["bytes"] += nbytes

    for rank, stream in enumerate(streams):
        timed = [(i, ev) for i, ev in enumerate(stream) if ev[0] in _TIMED]
        posts: List[float] = []
        for k, (i, ev) in enumerate(timed):
            ti, gi = _TIMED[ev[0]]
            if k + 1 < len(timed):
                nxt = timed[k + 1][1]
                nti, ngi = _TIMED[nxt[0]]
                posts.append(nxt[nti] - nxt[ngi])
            else:
                posts.append(ev[ti])

        cur_post = 0.0
        coll_stack: List[Tuple[Tuple[int, int], float]] = []
        inst_count: Dict[int, int] = {}
        tk = 0
        for i, ev in enumerate(stream):
            kind = ev[0]
            if kind == "B":
                _, _, comm_id, op, alg, root, nbytes, segs = ev
                k = inst_count.get(comm_id, 0)
                inst_count[comm_id] = k + 1
                key = (comm_id, k)
                inst = colls.get(key)
                if inst is None:
                    inst = colls[key] = CollectiveInstance(
                        comm_id=comm_id, index=k, op=op, alg=alg,
                        root=root, nbytes=nbytes, segments=segs,
                        ranks=tuple(comms.get(comm_id, ())))
                inst.arrivals[rank] = cur_post
                coll_stack.append((key, cur_post))
                continue
            if kind == "E":
                if coll_stack:
                    key, t0 = coll_stack.pop()
                    inst = colls[key]
                    if cur_post > inst.t_end:
                        inst.t_end = cur_post
                    spans_rows.append((rank, inst.name, t0,
                                       max(cur_post, t0),
                                       len(coll_stack), None))
                continue

            ti, gi = _TIMED[kind]
            t, g = ev[ti], ev[gi]
            post = posts[tk]
            tk += 1
            if g > 0.0:
                gaps.append((rank, t - g, t))
            seq = -1
            if kind == "S":
                seq = ev[6]
                msg_src[seq] = rank
                msg_dst[seq] = ev[2]
                msg_nbytes[seq] = ev[3]
                msg_t_send[seq] = t
                seq_site[seq] = (rank, len(rank_events[rank]))
                charge(rank, ev[2], ev[3], t, ev[5])
            elif kind == "R":
                seq = ev[2]
                if 0 <= seq < n_seq:
                    msg_t_recv[seq] = post
                waits.append(Wait(rank, t, max(post, t), seq))
            elif kind == "P":
                charge(rank, ev[2], ev[3], t, ev[4])
            elif kind == "G":
                # gets move bytes target -> origin, as monitored
                charge(ev[2], rank, ev[3], t, ev[4])
            rank_events[rank].append((kind, t, max(post, t), seq, g))
            cur_post = post

    messages = None
    if n_seq:
        messages = {"src": msg_src, "dst": msg_dst, "nbytes": msg_nbytes,
                    "t_send": msg_t_send, "t_recv": msg_t_recv}

    counters: Dict[str, CounterSeries] = {}
    for cls, evs in link_events.items():
        counters[f"link:bytes:{cls}"] = CounterSeries.from_events(evs)
    for node, evs in node_events.items():
        counters[f"nic:issued:node{node}"] = CounterSeries.from_events(evs)
    if messages is not None:
        depth_events: List[Tuple[float, float]] = []
        fallback = max(clocks) if clocks else 0.0
        for s in range(n_seq):
            if msg_src[s] < 0:
                continue
            t0 = float(msg_t_send[s])
            t1 = float(msg_t_recv[s])
            if np.isnan(t1):
                t1 = fallback
            depth_events.append((t0, 1.0))
            depth_events.append((max(t1, t0), -1.0))
        if depth_events:
            counters["net:inflight"] = CounterSeries.from_events(depth_events)

    return {
        "spans_rows": spans_rows,
        "waits": waits,
        "gaps": gaps,
        "collectives": sorted(colls.values(),
                              key=lambda c: (c.comm_id, c.index)),
        "messages": messages,
        "counters": counters,
        "pml": pml,
        "rank_events": rank_events,
        "seq_site": seq_site,
    }


# ---------------------------------------------------------------------------
# the store


class Timeline:
    """The joined cross-layer store; see the module docstring.

    Every field is optional beyond ``world_size``/``makespan`` so tests
    can hand-build minimal timelines; the diagnosis passes check for
    the layers they need and report "pass skipped" when one is absent.
    """

    def __init__(self, world_size: int, makespan: float,
                 source: str = "hand",
                 spans: Optional[SpanTable] = None,
                 counters: Optional[Dict[str, CounterSeries]] = None,
                 link_alpha: Optional[Dict[str, float]] = None,
                 pml: Optional[Dict[str, Dict[str, int]]] = None,
                 messages: Optional[Dict[str, np.ndarray]] = None,
                 waits: Sequence[Wait] = (),
                 gaps: Sequence[Tuple[int, float, float]] = (),
                 collectives: Sequence[CollectiveInstance] = (),
                 clocks: Optional[Sequence[float]] = None,
                 meta: Optional[dict] = None,
                 _rank_events: Optional[List[List[tuple]]] = None,
                 _seq_site: Optional[Dict[int, Tuple[int, int]]] = None):
        self.world_size = int(world_size)
        self.makespan = float(makespan)
        self.source = source
        self.spans = spans if spans is not None else SpanTable.empty()
        self.counters = dict(counters or {})
        self.link_alpha = dict(link_alpha or {})
        self.pml = dict(pml or {})
        self.messages = messages
        self.waits = list(waits)
        self.gaps = list(gaps)
        self.collectives = list(collectives)
        self.clocks = list(clocks) if clocks is not None else None
        self.meta = dict(meta or {})
        self._rank_events = _rank_events
        self._seq_site = _seq_site

    # -- ingestion -------------------------------------------------------

    @classmethod
    def from_run(cls, engine, spans=None, tracer=None, trace=None,
                 meta: Optional[dict] = None) -> "Timeline":
        """Ingest an instrumented live run.

        ``spans`` is the :class:`~repro.obs.spans.SpanRecorder` used
        during the run (its integer lanes become the span table),
        ``tracer`` an installed :class:`~repro.simmpi.trace.MessageTracer`
        (per-message link-class series) and ``trace`` an ambient
        :class:`~repro.replay.schema.ReplayTrace` capture (event-level
        layers: messages, waits, collective arrivals).  All three are
        optional; whatever is present is joined.
        """
        net = engine.network
        topo = engine.cluster.topology
        params = net.params

        ing: Dict[str, Any] = {}
        if trace is not None:
            ing = _ingest_events(
                trace.world_size, trace.events, trace.comms, trace.clocks,
                topology=topo, binding=net.binding)

        counters: Dict[str, CounterSeries] = {}
        nic = net.nic
        for node in range(nic.n_nodes):
            evs = nic.xmit_events(node)
            if evs:
                times, totals = zip(*evs)
                counters[f"nic:xmit:node{node}"] = CounterSeries(times, totals)
            evs = nic.rcv_events(node)
            if evs:
                times, totals = zip(*evs)
                counters[f"nic:rcv:node{node}"] = CounterSeries(times, totals)

        if ing:
            counters.update(ing["counters"])
        elif tracer is not None and len(tracer):
            clsidx = net._clsidx_l
            classes = net.route_classes
            n = net._n_ranks
            link_events: Dict[str, List[Tuple[float, float]]] = {}
            for e in tracer.events:
                cls_name = classes[clsidx[e.src * n + e.dst]]
                link_events.setdefault(cls_name, []).append(
                    (e.time, float(e.nbytes)))
            for cls_name, evs in link_events.items():
                counters[f"link:bytes:{cls_name}"] = \
                    CounterSeries.from_events(evs)

        link_alpha = {}
        for key in counters:
            if key.startswith("link:bytes:"):
                cls_name = key[len("link:bytes:"):]
                link_alpha[cls_name] = params.link_for(cls_name, topo).latency

        span_rows = []
        if spans is not None:
            span_rows = [(lane, name, t0, t1, depth, args)
                         for lane, name, t0, t1, depth, args in spans.finished
                         if isinstance(lane, int)]
        elif ing:
            span_rows = ing["spans_rows"]

        return cls(
            world_size=engine.n_ranks,
            makespan=engine.max_clock,
            source="run",
            spans=SpanTable.from_rows(span_rows),
            counters=counters,
            link_alpha=link_alpha,
            pml=engine.pml.snapshot_state(),
            messages=ing.get("messages"),
            waits=ing.get("waits", ()),
            gaps=ing.get("gaps", ()),
            collectives=ing.get("collectives", ()),
            clocks=engine.clocks(),
            meta=meta,
            _rank_events=ing.get("rank_events"),
            _seq_site=ing.get("seq_site"),
        )

    @classmethod
    def from_trace(cls, trace, meta: Optional[dict] = None) -> "Timeline":
        """Ingest a recorded replay trace — no re-simulation.

        Link classes are derived from the recorded topology + binding;
        NIC series are per-node *issue-time* cumulative bytes (the
        hardware counter ticks at ``sender_done``, a send-overhead
        later — close enough for windowed diagnosis, and noted in the
        resulting meta).  PML epochs approximate the live counter by
        the number of recorded monitored events.
        """
        from repro.replay.schema import params_from_json, topology_from_json

        topo = topology_from_json(trace.topology)
        params = params_from_json(trace.params)
        ing = _ingest_events(
            trace.world_size, trace.events, trace.comms, trace.clocks,
            topology=topo, binding=trace.binding)

        link_alpha = {}
        for key in ing["counters"]:
            if key.startswith("link:bytes:"):
                cls_name = key[len("link:bytes:"):]
                link_alpha[cls_name] = params.link_for(cls_name, topo).latency

        full_meta = {"nic_series": "issue-time approximation",
                     "pml_epochs": "recorded-event counts"}
        full_meta.update(trace.meta or {})
        full_meta.update(meta or {})
        return cls(
            world_size=trace.world_size,
            makespan=max(trace.clocks) if trace.clocks else 0.0,
            source="trace",
            spans=SpanTable.from_rows(ing["spans_rows"]),
            counters=ing["counters"],
            link_alpha=link_alpha,
            pml=ing["pml"],
            messages=ing["messages"],
            waits=ing["waits"],
            gaps=ing["gaps"],
            collectives=ing["collectives"],
            clocks=trace.clocks,
            meta=full_meta,
            _rank_events=ing["rank_events"],
            _seq_site=ing["seq_site"],
        )

    # -- span / counter queries -----------------------------------------

    def span_indices(self, t0: Optional[float] = None,
                     t1: Optional[float] = None,
                     ranks: Optional[Iterable[int]] = None,
                     names: Optional[Iterable[str]] = None) -> np.ndarray:
        return self.spans.select(t0=t0, t1=t1, ranks=ranks, names=names)

    def spans_between(self, t0: Optional[float] = None,
                      t1: Optional[float] = None,
                      ranks: Optional[Iterable[int]] = None,
                      names: Optional[Iterable[str]] = None) -> List[Span]:
        return self.spans.rows(self.span_indices(t0, t1, ranks, names))

    def counter_keys(self, prefix: Optional[str] = None) -> List[str]:
        keys = sorted(self.counters)
        if prefix is None:
            return keys
        return [k for k in keys if k.startswith(prefix)]

    def counter(self, key: str) -> CounterSeries:
        return self.counters[key]

    def counter_delta(self, key: str, t0: float, t1: float) -> float:
        return self.counters[key].delta(t0, t1)

    def link_classes(self) -> List[str]:
        return [k[len("link:bytes:"):]
                for k in self.counter_keys("link:bytes:")]

    def link_bytes(self, cls_name: str) -> float:
        series = self.counters.get(f"link:bytes:{cls_name}")
        return series.total if series is not None else 0.0

    # -- event-level queries ---------------------------------------------

    def waits_of(self, rank: int) -> List[Wait]:
        return [w for w in self.waits if w.rank == rank]

    def rank_gaps(self, rank: int,
                  min_gap: float = 0.0) -> List[Tuple[float, float]]:
        """Local-computation gaps of one rank: intervals between an
        event's completion and the next event's issue, straight from
        the recorded ``gap`` fields."""
        return [(t0, t1) for r, t0, t1 in self.gaps
                if r == rank and (t1 - t0) >= min_gap]

    def overlap_join(self, a_idx: Iterable[int],
                     b_idx: Iterable[int]) -> List[Tuple[int, int]]:
        """Interval overlap join over two span-index sets.

        Returns ``(i, j)`` pairs (indices into the span table) whose
        intervals intersect, via a sweep over both sets sorted by start
        time — the primitive "which collectives overlap this stall"
        queries build on.
        """
        a = sorted((float(self.spans.t0[i]), float(self.spans.t1[i]), int(i))
                   for i in a_idx)
        b = sorted((float(self.spans.t0[j]), float(self.spans.t1[j]), int(j))
                   for j in b_idx)
        out: List[Tuple[int, int]] = []
        start = 0
        for at0, at1, i in a:
            # advance past b-intervals that end before this one starts
            while start < len(b) and b[start][1] < at0:
                start += 1
            for bt0, bt1, j in b[start:]:
                if bt0 > at1:
                    break
                if bt1 >= at0:
                    out.append((i, j))
        return out

    def inflight_coverage(self, rank: int, t0: float, t1: float) -> float:
        """Seconds of ``[t0, t1]`` during which at least one message
        destined for ``rank`` was in flight (sent, not yet received).

        The serialization-stall detector's core question: a long wait
        whose window has ~zero coverage means the rank starved because
        its peer had not even *issued* the data yet.
        """
        if self.messages is None or t1 <= t0:
            return 0.0
        m = self.messages
        sel = np.flatnonzero(m["dst"] == rank)
        if not len(sel):
            return 0.0
        starts = m["t_send"][sel]
        ends = m["t_recv"][sel]
        ends = np.where(np.isnan(ends), self.makespan, ends)
        lo = np.maximum(starts, t0)
        hi = np.minimum(ends, t1)
        keep = lo < hi
        if not keep.any():
            return 0.0
        ivals = sorted(zip(lo[keep].tolist(), hi[keep].tolist()))
        covered = 0.0
        cur_lo, cur_hi = ivals[0]
        for s, e in ivals[1:]:
            if s > cur_hi:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = s, e
            elif e > cur_hi:
                cur_hi = e
        covered += cur_hi - cur_lo
        return covered

    def critical_path(self, max_segments: int = 4096
                      ) -> List[CriticalSegment]:
        """Backward walk from the last-finishing rank's final event.

        Receive-waits jump to the sender of the awaited message (via
        the recorded sequence number); other events step backward on
        the same rank, emitting a ``compute`` segment for any recorded
        local gap.  Needs event-level ingestion (a replay trace)."""
        if not self._rank_events:
            return []
        finals = [(evs[-1][2] if evs else 0.0, r)
                  for r, evs in enumerate(self._rank_events)]
        _, rank = max(finals)
        i = len(self._rank_events[rank]) - 1
        segs: List[CriticalSegment] = []
        while i >= 0 and len(segs) < max_segments:
            kind, t, post, seq, gap = self._rank_events[rank][i]
            segs.append(CriticalSegment(rank, t, post, _KIND_NAME[kind]))
            if kind == "R" and seq >= 0 and self._seq_site is not None:
                site = self._seq_site.get(seq)
                if site is not None and site != (rank, i):
                    rank, i = site
                    continue
            if gap > 0.0:
                segs.append(CriticalSegment(rank, t - gap, t, "compute"))
            i -= 1
        segs.reverse()
        return segs

    # -- export bridge ---------------------------------------------------

    def as_finished_spans(self) -> List[tuple]:
        """Span rows in :data:`repro.obs.spans.FinishedSpan` shape, so
        the Chrome-trace exporter can render a timeline built from a
        replay trace exactly like a live recorder."""
        return [(int(self.spans.rank[i]),
                 self.spans.names[self.spans.name_id[i]],
                 float(self.spans.t0[i]), float(self.spans.t1[i]),
                 int(self.spans.depth[i]), self.spans.args[i])
                for i in range(len(self.spans))]

    def layer_summary(self) -> Dict[str, Any]:
        """Per-layer presence/volume summary (reports embed this)."""
        return {
            "spans": {"rows": len(self.spans),
                      "names": len(self.spans.names)},
            "counters": {"series": len(self.counters),
                         "link_classes": self.link_classes()},
            "pml": {cat: dict(rec) for cat, rec in sorted(self.pml.items())},
            "events": {
                "messages": (0 if self.messages is None
                             else int((self.messages["src"] >= 0).sum())),
                "waits": len(self.waits),
                "collectives": len(self.collectives),
                "gaps": len(self.gaps),
            },
        }
