"""Process-local metrics registry: counters, gauges, histograms.

The registry is deliberately tiny — no wire formats, no background
threads, no locks (the simulator's baton guarantees single-writer
access, and the sweep layer aggregates per-process snapshots itself).
Instruments are looked up by ``(name, labels)``; repeated lookups
return the same object, so hot code can resolve an instrument once and
then mutate a plain attribute.

Disabled mode is a *structural* no-op: :data:`NOOP_REGISTRY` hands out
the shared :data:`NOOP_COUNTER` / :data:`NOOP_GAUGE` /
:data:`NOOP_HISTOGRAM` singletons whose mutators do nothing and whose
snapshot is empty.  Code that resolves instruments through
:func:`repro.obs.registry` therefore needs no per-call enabled check.
"""

from __future__ import annotations

import json
import warnings
from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NoopCounter", "NoopGauge", "NoopHistogram", "NoopRegistry",
    "NOOP_COUNTER", "NOOP_GAUGE", "NOOP_HISTOGRAM", "NOOP_REGISTRY",
    "DEFAULT_BUCKETS", "SNAPSHOT_SCHEMA", "dump_snapshot", "load_snapshot",
]

#: On-disk metrics-snapshot format version.  The in-memory
#: :meth:`MetricsRegistry.snapshot` shape is unversioned (it has
#: in-process consumers asserting its exact keys); only the JSON file
#: carries the ``"schema"`` field, the same discipline as the replay
#: trace and flush-profile formats.
SNAPSHOT_SCHEMA = 1

#: Powers-of-two upper bounds, a reasonable default for counts/depths.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """Monotonically increasing value (ints or float totals)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value (plus a running-max convenience)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies observations
    ``<= uppers[i]``, with one overflow slot past the last bound."""

    __slots__ = ("uppers", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        uppers = tuple(float(b) for b in buckets)
        if not uppers or any(a >= b for a, b in zip(uppers, uppers[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Families of labelled instruments, keyed by metric name."""

    def __init__(self):
        # name -> (kind, {sorted-label-items: instrument})
        self._families: Dict[str, Tuple[str, Dict[Tuple, Any]]] = {}

    def _child(self, name: str, kind: str, labels: Dict[str, Any],
               factory, *args):
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = (kind, {})
        elif fam[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {fam[0]}, "
                f"not a {kind}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        inst = fam[1].get(key)
        if inst is None:
            inst = fam[1][key] = factory(*args)
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._child(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child(name, "gauge", labels, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        return self._child(name, "histogram", labels, Histogram,
                           buckets if buckets is not None else DEFAULT_BUCKETS)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able dump: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with ``name{k=v,...}`` keys."""
        out: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name, (kind, children) in sorted(self._families.items()):
            for key, inst in sorted(children.items()):
                label = name if not key else (
                    name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}")
                if kind == "counter":
                    out["counters"][label] = inst.value
                elif kind == "gauge":
                    out["gauges"][label] = inst.value
                else:
                    out["histograms"][label] = {
                        "buckets": list(inst.uppers),
                        "counts": list(inst.counts),
                        "sum": inst.sum,
                        "count": inst.count,
                    }
        return out


# -- snapshot files --------------------------------------------------------


def dump_snapshot(path: str, registry_or_snap: Any) -> None:
    """Write a metrics snapshot as schema-versioned JSON, atomically.

    Accepts a registry (``snapshot()`` is called) or an already-built
    snapshot dict; the file gains a ``"schema"`` field on top of the
    snapshot's ``counters``/``gauges``/``histograms`` sections."""
    from repro.core.flushio import atomic_write

    snap = (registry_or_snap.snapshot()
            if hasattr(registry_or_snap, "snapshot") else registry_or_snap)
    doc = {"schema": SNAPSHOT_SCHEMA}
    doc.update(snap)
    with atomic_write(path) as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load a metrics snapshot JSON written by :func:`dump_snapshot`.

    Raises :class:`repro.core.errors.TraceSchemaError` on a schema this
    reader does not understand; legacy files without a ``"schema"``
    field still load, with a warning."""
    from repro.core.errors import TraceSchemaError

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "counters" not in doc:
        raise TraceSchemaError(f"{path}: not a metrics snapshot")
    schema = doc.get("schema")
    if schema is None:
        warnings.warn(f"{path}: legacy metrics snapshot without a schema "
                      f"field; assuming schema={SNAPSHOT_SCHEMA}",
                      stacklevel=2)
    elif schema != SNAPSHOT_SCHEMA:
        raise TraceSchemaError(
            f"{path}: metrics snapshot schema={schema}, this reader "
            f"understands schema={SNAPSHOT_SCHEMA}")
    return doc


# -- disabled mode ---------------------------------------------------------


class NoopCounter:
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NOOP_COUNTER = NoopCounter()
NOOP_GAUGE = NoopGauge()
NOOP_HISTOGRAM = NoopHistogram()


class NoopRegistry:
    """Same surface as :class:`MetricsRegistry`, zero state."""

    __slots__ = ()

    def counter(self, name: str, **labels) -> NoopCounter:
        return NOOP_COUNTER

    def gauge(self, name: str, **labels) -> NoopGauge:
        return NOOP_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> NoopHistogram:
        return NOOP_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NOOP_REGISTRY = NoopRegistry()
