"""``python -m repro.obs`` — observe a simulated run.

Subcommands:

* ``export`` — run one Fig. 5 cell with the observability layer
  enabled and write the Perfetto-loadable Chrome trace (plus,
  optionally, the metrics snapshot and the raw message trace); with
  ``--trace-in`` the trace document is built from a recorded replay
  trace instead, no re-simulation;
* ``diagnose`` — build the cross-layer timeline for a cell (live run
  or ``--trace-in``) and run the automated "why is this slow" passes
  (:mod:`repro.obs.diagnose`), printing the findings and optionally
  writing the JSON report and an enriched Chrome trace;
* ``top`` — hottest rank pairs (and, with a metrics snapshot, link
  classes) from a dumped message trace;
* ``heatmap`` — terminal comm-matrix render (reuses
  :func:`repro.core.viz.render_heatmap`);
* ``validate`` — structural check of an exported trace file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import obs
from repro.obs.export import (chrome_trace, chrome_trace_from_timeline,
                              validate_chrome_trace, write_chrome_trace)
from repro.obs.metrics import dump_snapshot, load_snapshot

_DEFAULT_SIZES = "1_000_000,2_000_000"


def _build_parser() -> argparse.ArgumentParser:
    from repro.experiments.common import parse_sizes

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "export", help="run a fig5 cell instrumented; write a Perfetto trace")
    exp.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    exp.add_argument("--nodes", type=int, default=2,
                     help="PlaFRIM node count (24 ranks per node)")
    exp.add_argument("--sizes", type=parse_sizes, default=None,
                     metavar="N,N,...",
                     help=f"buffer sizes in ints (default {_DEFAULT_SIZES})")
    exp.add_argument("--reps", type=int, default=1)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--out", default="obs-trace.json",
                     help="Chrome trace output path")
    exp.add_argument("--metrics", default=None, metavar="PATH",
                     help="also write the metrics snapshot as JSON")
    exp.add_argument("--messages", default=None, metavar="PATH",
                     help="also dump the raw message trace")
    exp.add_argument("--trace-in", default=None, metavar="PATH",
                     help="build the Perfetto trace from a recorded replay "
                          "trace instead of re-running the cell")

    dia = sub.add_parser(
        "diagnose",
        help='cross-layer "why is this slow" report for a cell or a trace')
    dia.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    dia.add_argument("--nodes", type=int, default=2,
                     help="PlaFRIM node count (24 ranks per node)")
    dia.add_argument("--sizes", type=parse_sizes, default=None,
                     metavar="N,N,...",
                     help=f"buffer sizes in ints (default {_DEFAULT_SIZES})")
    dia.add_argument("--reps", type=int, default=1)
    dia.add_argument("--seed", type=int, default=0)
    dia.add_argument("--trace-in", default=None, metavar="PATH",
                     help="diagnose a recorded replay trace instead of "
                          "running the cell live")
    dia.add_argument("--report", default=None, metavar="PATH",
                     help="write the JSON report")
    dia.add_argument("--chrome", default=None, metavar="PATH",
                     help="also write a Chrome trace enriched with counter "
                          "tracks and the findings lane")
    dia.add_argument("--json", action="store_true",
                     help="print the JSON report instead of the rendering")

    top = sub.add_parser("top", help="hottest rank pairs of a message trace")
    top.add_argument("--messages", required=True,
                     help="message trace from `export --messages`")
    top.add_argument("-k", type=int, default=10, help="pairs to show")
    top.add_argument("--category", choices=["p2p", "coll", "osc"],
                     default=None)
    top.add_argument("--metrics", default=None, metavar="PATH",
                     help="metrics snapshot: adds a per-link-class section")

    hm = sub.add_parser("heatmap", help="terminal comm-matrix heatmap")
    hm.add_argument("--messages", required=True)
    hm.add_argument("--category", choices=["p2p", "coll", "osc"],
                    default=None)

    val = sub.add_parser("validate", help="check an exported trace file")
    val.add_argument("path")
    val.add_argument("--ranks", type=int, default=None,
                     help="require one named lane per rank")
    return parser


def _instrumented_cell(args, capture_events: bool = False):
    """Run one fig5 cell with obs enabled; returns the pieces the
    export/diagnose commands join.

    With ``capture_events`` the run is also ambiently recorded as a
    replay trace (the event-level timeline layer); either way a
    :class:`MessageTracer` observes per-message link traffic."""
    import contextlib

    from repro.experiments.common import parse_sizes
    from repro.experiments.fig5_collectives import run_cell
    from repro.simmpi import Cluster, Engine
    from repro.simmpi.trace import MessageTracer

    sizes = args.sizes if args.sizes is not None else parse_sizes(
        _DEFAULT_SIZES)
    registry, spans = obs.enable()
    try:
        if capture_events:
            from repro.replay import autorecord
            recording = autorecord.capture(
                meta={"workload": "fig5_cell", "op": args.op})
        else:
            recording = contextlib.nullcontext([])
        with recording as traces:
            cluster = Cluster.plafrim(args.nodes, binding="rr")
            engine = Engine(cluster, seed=args.seed)
            tracer = MessageTracer.install(engine)
            with spans.wall_span("fig5.run_cell",
                                 {"op": args.op, "nodes": args.nodes}):
                points = run_cell(args.op, args.nodes, sizes=sizes,
                                  reps=args.reps, seed=args.seed,
                                  engine=engine)
        trace = traces[0] if traces else None
        return registry, spans, engine, tracer, trace, points, sizes
    except BaseException:
        obs.disable()
        raise


def _print_points(points, file=None) -> None:
    for p in points:
        print(f"  {p.op} np={p.np_ranks} ints={p.n_ints}: "
              f"{p.t_baseline:.4f}s -> {p.t_reordered:.4f}s "
              f"({p.speedup:.2f}x)", file=file or sys.stdout)


def _cmd_export(args) -> int:
    from repro.experiments.common import handle_trace_in

    if args.trace_in:
        return 0 if handle_trace_in(
            args, consumer=lambda tr: _export_from_trace(args, tr)) else 1

    registry, spans, engine, tracer, _, points, sizes = \
        _instrumented_cell(args)
    try:
        from repro.obs.timeline import Timeline

        tl = Timeline.from_run(engine, spans=spans, tracer=tracer)
        doc = chrome_trace(
            spans, n_ranks=engine.n_ranks,
            meta={"op": args.op, "nodes": args.nodes,
                  "sizes": list(sizes), "seed": args.seed},
            timeline=tl)
        errors = validate_chrome_trace(doc, n_ranks=engine.n_ranks)
        if errors:  # pragma: no cover - exporter bug guard
            for e in errors:
                print(f"error: {e}")
            return 1
        write_chrome_trace(args.out, doc)
        n_spans = len(spans)
        print(f"{args.out}: {n_spans} spans over {engine.n_ranks} ranks "
              f"(virtual makespan {engine.max_clock:.3f}s, "
              f"{engine.messages} messages)")
        if args.metrics:
            dump_snapshot(args.metrics, registry)
            print(f"{args.metrics}: metrics snapshot")
        if args.messages:
            tracer.dump(args.messages)
            print(f"{args.messages}: {len(tracer)} trace events")
        _print_points(points)
        return 0
    finally:
        obs.disable()


def _export_from_trace(args, trace) -> None:
    """Build the Perfetto document from a recorded replay trace."""
    from repro.obs.timeline import Timeline

    tl = Timeline.from_trace(trace)
    doc = chrome_trace_from_timeline(
        tl, meta={"source": args.trace_in,
                  "workload": (trace.meta or {}).get("workload", "?")})
    errors = validate_chrome_trace(doc, n_ranks=tl.world_size)
    if errors:  # pragma: no cover - exporter bug guard
        raise SystemExit("\n".join(f"error: {e}" for e in errors))
    write_chrome_trace(args.out, doc)
    print(f"{args.out}: {len(tl.spans)} spans over {tl.world_size} ranks "
          f"from {args.trace_in} (virtual makespan {tl.makespan:.3f}s, "
          f"no re-simulation)")
    if args.messages:
        print("note: --messages needs a live run; ignored with --trace-in")
    if args.metrics:
        print("note: --metrics needs a live run; ignored with --trace-in")


def _cmd_diagnose(args) -> int:
    from repro.experiments.common import handle_trace_in
    from repro.obs.diagnose import diagnose, render_report, validate_report
    from repro.obs.timeline import Timeline

    if args.trace_in:
        box = {}
        handled = handle_trace_in(
            args, consumer=lambda tr: box.update(
                tl=Timeline.from_trace(tr)))
        if not handled:  # pragma: no cover - trace_in is set
            return 1
        tl = box["tl"]
        meta = {"trace": args.trace_in}
        # Report to stdout, logs to stderr — the convention every
        # machine-readable subcommand shares (repro.serve stats/query
        # included), so `... --json | jq` always works.
        print(f"diagnosing recorded trace {args.trace_in} "
              f"(no re-simulation)", file=sys.stderr)
    else:
        registry, spans, engine, tracer, trace, points, sizes = \
            _instrumented_cell(args, capture_events=True)
        try:
            tl = Timeline.from_run(engine, spans=spans, tracer=tracer,
                                   trace=trace)
        finally:
            obs.disable()
        meta = {"op": args.op, "nodes": args.nodes,
                "sizes": list(sizes), "seed": args.seed}
        _print_points(points, file=sys.stderr)

    report = diagnose(tl, meta=meta)
    errors = validate_report(report)
    if errors:  # pragma: no cover - report builder bug guard
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    # --json promises a machine-readable stdout: nothing but the doc.
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(render_report(report))
    if args.report:
        from repro.core.flushio import atomic_write

        with atomic_write(args.report) as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"{args.report}: diagnosis report", file=sys.stderr)
    if args.chrome:
        doc = chrome_trace_from_timeline(tl, meta=meta,
                                         findings=report["findings"])
        write_chrome_trace(args.chrome, doc)
        print(f"{args.chrome}: Chrome trace with findings lane",
              file=sys.stderr)
    return 0


def _cmd_top(args) -> int:
    import numpy as np

    from repro.simmpi.trace import MessageTracer

    tracer = MessageTracer.load(args.messages)
    sizes = tracer.size_matrix(category=args.category)
    counts = tracer.count_matrix(category=args.category)
    flat = sizes.ravel()
    order = np.argsort(flat)[::-1][: args.k]
    n = tracer.world_size
    cat = args.category or "all"
    print(f"top {args.k} rank pairs by bytes ({cat}, {len(tracer)} events):")
    print(f"{'src':>5} {'dst':>5} {'bytes':>14} {'msgs':>8}")
    for idx in order:
        if flat[idx] == 0:
            break
        src, dst = divmod(int(idx), n)
        print(f"{src:>5} {dst:>5} {int(flat[idx]):>14,} "
              f"{int(counts[src, dst]):>8,}")
    if args.metrics:
        snap = load_snapshot(args.metrics)
        links = {
            k: v for k, v in snap.get("counters", {}).items()
            if k.startswith("repro_net_link_bytes_total")
        }
        if links:
            print("per-link-class bytes:")
            for key, val in sorted(links.items(), key=lambda kv: -kv[1]):
                cls = key.split("link=")[-1].rstrip("}")
                print(f"  {cls:>10} {int(val):>14,}")
    return 0


def _cmd_heatmap(args) -> int:
    from repro.core.viz import render_heatmap
    from repro.simmpi.trace import MessageTracer

    tracer = MessageTracer.load(args.messages)
    cat = args.category or "all"
    print(f"byte heatmap ({cat}, {tracer.world_size} ranks):")
    print(render_heatmap(tracer.size_matrix(category=args.category),
                         max_size=tracer.world_size))
    return 0


def _cmd_validate(args) -> int:
    with open(args.path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_chrome_trace(doc, n_ranks=args.ranks)
    if errors:
        for e in errors:
            print(f"error: {e}")
        return 1
    n_events = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
    print(f"{args.path}: valid ({n_events} spans)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "heatmap":
        return _cmd_heatmap(args)
    return _cmd_validate(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
