"""``python -m repro.obs`` — observe a simulated run.

Subcommands:

* ``export`` — run one Fig. 5 cell with the observability layer
  enabled and write the Perfetto-loadable Chrome trace (plus,
  optionally, the metrics snapshot and the raw message trace);
* ``top`` — hottest rank pairs (and, with a metrics snapshot, link
  classes) from a dumped message trace;
* ``heatmap`` — terminal comm-matrix render (reuses
  :func:`repro.core.viz.render_heatmap`);
* ``validate`` — structural check of an exported trace file.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro import obs
from repro.obs.export import (chrome_trace, validate_chrome_trace,
                              write_chrome_trace)

_DEFAULT_SIZES = "1_000_000,2_000_000"


def _build_parser() -> argparse.ArgumentParser:
    from repro.experiments.common import parse_sizes

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser(
        "export", help="run a fig5 cell instrumented; write a Perfetto trace")
    exp.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    exp.add_argument("--nodes", type=int, default=2,
                     help="PlaFRIM node count (24 ranks per node)")
    exp.add_argument("--sizes", type=parse_sizes, default=None,
                     metavar="N,N,...",
                     help=f"buffer sizes in ints (default {_DEFAULT_SIZES})")
    exp.add_argument("--reps", type=int, default=1)
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--out", default="obs-trace.json",
                     help="Chrome trace output path")
    exp.add_argument("--metrics", default=None, metavar="PATH",
                     help="also write the metrics snapshot as JSON")
    exp.add_argument("--messages", default=None, metavar="PATH",
                     help="also dump the raw message trace")

    top = sub.add_parser("top", help="hottest rank pairs of a message trace")
    top.add_argument("--messages", required=True,
                     help="message trace from `export --messages`")
    top.add_argument("-k", type=int, default=10, help="pairs to show")
    top.add_argument("--category", choices=["p2p", "coll", "osc"],
                     default=None)
    top.add_argument("--metrics", default=None, metavar="PATH",
                     help="metrics snapshot: adds a per-link-class section")

    hm = sub.add_parser("heatmap", help="terminal comm-matrix heatmap")
    hm.add_argument("--messages", required=True)
    hm.add_argument("--category", choices=["p2p", "coll", "osc"],
                    default=None)

    val = sub.add_parser("validate", help="check an exported trace file")
    val.add_argument("path")
    val.add_argument("--ranks", type=int, default=None,
                     help="require one named lane per rank")
    return parser


def _cmd_export(args) -> int:
    from repro.experiments.common import parse_sizes
    from repro.experiments.fig5_collectives import run_cell
    from repro.simmpi import Cluster, Engine
    from repro.simmpi.trace import MessageTracer

    sizes = args.sizes if args.sizes is not None else parse_sizes(
        _DEFAULT_SIZES)
    registry, spans = obs.enable()
    try:
        cluster = Cluster.plafrim(args.nodes, binding="rr")
        engine = Engine(cluster, seed=args.seed)
        tracer = MessageTracer.install(engine) if args.messages else None
        with spans.wall_span("fig5.run_cell",
                             {"op": args.op, "nodes": args.nodes}):
            points = run_cell(args.op, args.nodes, sizes=sizes,
                              reps=args.reps, seed=args.seed, engine=engine)
        doc = chrome_trace(
            spans, n_ranks=engine.n_ranks,
            meta={"op": args.op, "nodes": args.nodes,
                  "sizes": list(sizes), "seed": args.seed})
        errors = validate_chrome_trace(doc, n_ranks=engine.n_ranks)
        if errors:  # pragma: no cover - exporter bug guard
            for e in errors:
                print(f"error: {e}")
            return 1
        write_chrome_trace(args.out, doc)
        n_spans = len(spans)
        print(f"{args.out}: {n_spans} spans over {engine.n_ranks} ranks "
              f"(virtual makespan {engine.max_clock:.3f}s, "
              f"{engine.messages} messages)")
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(registry.snapshot(), fh, indent=1, sort_keys=True)
                fh.write("\n")
            print(f"{args.metrics}: metrics snapshot")
        if tracer is not None:
            tracer.dump(args.messages)
            print(f"{args.messages}: {len(tracer)} trace events")
        for p in points:
            print(f"  {p.op} np={p.np_ranks} ints={p.n_ints}: "
                  f"{p.t_baseline:.4f}s -> {p.t_reordered:.4f}s "
                  f"({p.speedup:.2f}x)")
        return 0
    finally:
        obs.disable()


def _cmd_top(args) -> int:
    import numpy as np

    from repro.simmpi.trace import MessageTracer

    tracer = MessageTracer.load(args.messages)
    sizes = tracer.size_matrix(category=args.category)
    counts = tracer.count_matrix(category=args.category)
    flat = sizes.ravel()
    order = np.argsort(flat)[::-1][: args.k]
    n = tracer.world_size
    cat = args.category or "all"
    print(f"top {args.k} rank pairs by bytes ({cat}, {len(tracer)} events):")
    print(f"{'src':>5} {'dst':>5} {'bytes':>14} {'msgs':>8}")
    for idx in order:
        if flat[idx] == 0:
            break
        src, dst = divmod(int(idx), n)
        print(f"{src:>5} {dst:>5} {int(flat[idx]):>14,} "
              f"{int(counts[src, dst]):>8,}")
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as fh:
            snap = json.load(fh)
        links = {
            k: v for k, v in snap.get("counters", {}).items()
            if k.startswith("repro_net_link_bytes_total")
        }
        if links:
            print("per-link-class bytes:")
            for key, val in sorted(links.items(), key=lambda kv: -kv[1]):
                cls = key.split("link=")[-1].rstrip("}")
                print(f"  {cls:>10} {int(val):>14,}")
    return 0


def _cmd_heatmap(args) -> int:
    from repro.core.viz import render_heatmap
    from repro.simmpi.trace import MessageTracer

    tracer = MessageTracer.load(args.messages)
    cat = args.category or "all"
    print(f"byte heatmap ({cat}, {tracer.world_size} ranks):")
    print(render_heatmap(tracer.size_matrix(category=args.category),
                         max_size=tracer.world_size))
    return 0


def _cmd_validate(args) -> int:
    with open(args.path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate_chrome_trace(doc, n_ranks=args.ranks)
    if errors:
        for e in errors:
            print(f"error: {e}")
        return 1
    n_events = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
    print(f"{args.path}: valid ({n_events} spans)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "heatmap":
        return _cmd_heatmap(args)
    return _cmd_validate(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
