"""repro.obs — the unified observability layer.

Four pillars:

* **metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  published by the engine, network, monitoring component, and session
  runtime;
* **spans** (:mod:`repro.obs.spans` + :mod:`repro.obs.export`) —
  begin/end tracing over *virtual* time (collectives, reorder phases,
  app iterations) plus a wall-clock self-profile lane, exported as
  Chrome trace-event JSON for Perfetto (with cross-layer counter
  tracks and a diagnosis-findings lane);
* **analysis** (:mod:`repro.obs.timeline` + :mod:`repro.obs.diagnose`)
  — the columnar cross-layer timeline store joining spans, NIC/link
  counter series and PML epochs on virtual time, plus the automated
  "why is this slow" diagnosis passes;
* **surfaces** — the ``python -m repro.obs`` CLI (``export`` /
  ``diagnose`` / ``top`` / ``heatmap`` / ``validate``) and the sweep
  run report's per-cell telemetry.

The layer is **disabled by default** and near-free when off: enabling
costs a process-wide flag read at ``Engine`` construction, and the
per-message accounting rides the PML trace hook — a branch the hot
path already pays.  Turn it on with ``REPRO_OBS=1`` in the environment
(read once at import) or programmatically::

    from repro import obs
    registry, spans = obs.enable()
    engine = Engine(cluster)        # built *after* enable()
    engine.run(program)
    print(registry.snapshot())

:func:`registry` always returns a usable object — the live registry
when enabled, the shared no-op singleton otherwise — so cold call
sites record unconditionally.  :func:`spans` returns ``None`` when
disabled; span call sites are expected to check (they sit closer to
hot paths).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.obs.metrics import NOOP_REGISTRY, MetricsRegistry
from repro.obs.spans import SpanRecorder

__all__ = ["is_enabled", "enable", "disable", "registry", "spans"]

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "0").strip().lower() in _TRUTHY


_enabled: bool = _env_enabled()
_registry: Optional[MetricsRegistry] = MetricsRegistry() if _enabled else None
_spans: Optional[SpanRecorder] = SpanRecorder() if _enabled else None


def is_enabled() -> bool:
    return _enabled


def enable(fresh: bool = True) -> Tuple[MetricsRegistry, SpanRecorder]:
    """Turn the layer on; returns ``(registry, span_recorder)``.

    ``fresh=True`` (default) starts empty collectors; ``fresh=False``
    keeps any existing ones (resuming after a :func:`disable`).  Only
    engines built *while enabled* are instrumented.
    """
    global _enabled, _registry, _spans
    if fresh or _registry is None:
        _registry = MetricsRegistry()
        _spans = SpanRecorder()
    _enabled = True
    return _registry, _spans


def disable() -> None:
    """Turn the layer off (existing engines keep their references)."""
    global _enabled
    _enabled = False


def registry() -> MetricsRegistry:
    """The live registry, or the no-op singleton when disabled."""
    return _registry if _enabled else NOOP_REGISTRY


def spans() -> Optional[SpanRecorder]:
    """The live span recorder, or ``None`` when disabled."""
    return _spans if _enabled else None
