"""Mapping utilities: placements, permutations, and the paper's ``k``.

Terminology (paper §5):

* a **binding** maps rank → PU and is fixed for the process lifetime;
* a **placement** maps logical process → PU (what TreeMatch computes);
* the reordering permutation ``k`` is defined such that *the process
  of original rank i gets rank k[i] in the optimized communicator*
  (``MPI_Comm_split(comm, 0, k[rank])``).

If TreeMatch decides logical process j should run on PU σ(j), and the
process of rank i is pinned on PU p(i), then k[i] is the j with
σ(j) = p(i).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "validate_placement",
    "reorder_permutation",
    "apply_permutation",
    "invert_permutation",
    "is_permutation",
]


def validate_placement(placement: Sequence[int], allowed_pus: Sequence[int]) -> List[int]:
    """A placement must be injective into the allowed PU set."""
    placement = [int(p) for p in placement]
    allowed = set(int(p) for p in allowed_pus)
    seen = set()
    for pu in placement:
        if pu not in allowed:
            raise ValueError(f"placement uses PU {pu} outside the allowed set")
        if pu in seen:
            raise ValueError(f"placement assigns PU {pu} twice")
        seen.add(pu)
    return placement


def reorder_permutation(
    placement: Sequence[int], rank_pus: Sequence[int]
) -> np.ndarray:
    """The paper's ``k``: new rank of each original rank.

    ``placement[j]`` is the PU TreeMatch wants logical rank j on;
    ``rank_pus[i]`` is the PU the process of original rank i actually
    occupies.  Requires both to range over the same PU set.
    """
    if len(placement) != len(rank_pus):
        raise ValueError(
            f"placement covers {len(placement)} processes, "
            f"binding covers {len(rank_pus)}"
        )
    by_pu = {}
    for j, pu in enumerate(placement):
        if pu in by_pu:
            raise ValueError(f"placement assigns PU {pu} twice")
        by_pu[int(pu)] = j
    k = np.empty(len(rank_pus), dtype=np.intp)
    for i, pu in enumerate(rank_pus):
        try:
            k[i] = by_pu[int(pu)]
        except KeyError:
            raise ValueError(
                f"rank {i} sits on PU {pu}, which the placement does not use"
            ) from None
    if not is_permutation(k):
        raise ValueError("derived k is not a permutation")
    return k


def is_permutation(k: Sequence[int]) -> bool:
    k = np.asarray(k)
    return bool(np.array_equal(np.sort(k), np.arange(len(k))))


def invert_permutation(k: Sequence[int]) -> np.ndarray:
    k = np.asarray(k, dtype=np.intp)
    inv = np.empty_like(k)
    inv[k] = np.arange(len(k))
    return inv


def apply_permutation(matrix: np.ndarray, k: Sequence[int]) -> np.ndarray:
    """Communication matrix as seen after renumbering ranks by ``k``.

    Entry (i, j) of the input is traffic between original ranks; the
    output is indexed by new ranks: out[k[i], k[j]] = in[i, j].
    """
    k = np.asarray(k, dtype=np.intp)
    inv = invert_permutation(k)
    m = np.asarray(matrix)
    return m[np.ix_(inv, inv)]
