"""Greedy affinity grouping — TreeMatch's ``GroupProcesses`` kernel.

Given a symmetric affinity matrix and a list of prescribed group sizes,
build groups that keep as much affinity as possible *inside* groups.
Greedy strategy (the one TreeMatch falls back to when exhaustive search
is too expensive): seed each group with the ungrouped item having the
largest remaining affinity, then repeatedly add the ungrouped item with
the strongest connection to the group.

Works on dense NumPy matrices and on ``scipy.sparse`` matrices (used
for the very large communication matrices of the paper's Table 1,
where a dense 65536² array would need ~34 GB).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["greedy_group", "refine_groups", "symmetrize", "aggregate_matrix"]

Matrix = Union[np.ndarray, sp.spmatrix]


def symmetrize(matrix: Matrix) -> Matrix:
    """Affinity view of a (possibly asymmetric) traffic matrix: M + Mᵀ."""
    if sp.issparse(matrix):
        out = (matrix + matrix.T).tocsr()
        out.setdiag(0)
        out.eliminate_zeros()
        return out
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"affinity matrix must be square, got {m.shape}")
    out = m + m.T
    np.fill_diagonal(out, 0.0)
    return out


def _add_row(vec: np.ndarray, W: Matrix, j: int, sign: float) -> None:
    """vec += sign * W[j], exploiting sparsity (CSR row slicing)."""
    if sp.issparse(W):
        start, end = W.indptr[j], W.indptr[j + 1]
        idx = W.indices[start:end]
        if sign > 0:
            np.add.at(vec, idx, W.data[start:end])
        else:
            np.subtract.at(vec, idx, W.data[start:end])
    else:
        if sign > 0:
            vec += W[j]
        else:
            vec -= W[j]


def greedy_group(W: Matrix, sizes: Sequence[int]) -> List[List[int]]:
    """Partition ``range(n)`` into groups of the prescribed ``sizes``.

    ``W`` must be symmetric with a zero diagonal (see
    :func:`symmetrize`).  Groups are built in the order given —
    callers pass sizes largest-first so the biggest (hardest) group
    gets first pick.  Returns the groups in that same order, each
    sorted ascending.
    """
    n = W.shape[0]
    sizes = [int(s) for s in sizes]
    if any(s < 1 for s in sizes):
        raise ValueError(f"group sizes must be >= 1: {sizes}")
    if sum(sizes) != n:
        raise ValueError(f"group sizes sum to {sum(sizes)}, need {n}")

    ungrouped = np.ones(n, dtype=bool)
    # rem[i] = affinity of i to the currently ungrouped items; used to
    # seed groups around communication hot-spots.
    if sp.issparse(W):
        rem = np.asarray(W.sum(axis=1)).ravel().astype(np.float64)
    else:
        rem = W.sum(axis=1).astype(np.float64)

    neg_inf = -np.inf
    groups: List[List[int]] = []
    for size in sizes:
        # Seed: the hottest remaining item.
        masked = np.where(ungrouped, rem, neg_inf)
        seed = int(np.argmax(masked))
        group = [seed]
        ungrouped[seed] = False
        _add_row(rem, W, seed, -1.0)
        conn = np.zeros(n, dtype=np.float64)
        _add_row(conn, W, seed, +1.0)
        # Grow: strongest connection to the group so far.
        while len(group) < size:
            masked = np.where(ungrouped, conn, neg_inf)
            nxt = int(np.argmax(masked))
            group.append(nxt)
            ungrouped[nxt] = False
            _add_row(rem, W, nxt, -1.0)
            _add_row(conn, W, nxt, +1.0)
        groups.append(sorted(group))
    return groups


def aggregate_matrix(W: Matrix, groups: Sequence[Sequence[int]]) -> Matrix:
    """Affinity between groups: Wg = S W Sᵀ with S the group indicator."""
    n = W.shape[0]
    g = len(groups)
    rows, cols = [], []
    for gi, members in enumerate(groups):
        for m in members:
            rows.append(gi)
            cols.append(m)
    data = np.ones(len(rows), dtype=np.float64)
    S = sp.csr_matrix((data, (rows, cols)), shape=(g, n))
    if sp.issparse(W):
        out = (S @ W @ S.T).tocsr()
        out.setdiag(0)
        out.eliminate_zeros()
        return out
    out = np.asarray(S @ W @ S.T)
    np.fill_diagonal(out, 0.0)
    return out


def refine_groups(W, groups, max_passes: int = 4):
    """Pairwise-swap hill climbing on a grouping (Kernighan-Lin style).

    Greedy grouping is order-sensitive; one refinement pass repairs
    most of its local mistakes.  Group sizes are preserved.  Sparse
    inputs are densified when small (refinement targets per-level
    groupings) and returned unchanged otherwise.

    Vectorized: ``C[i, k]`` tracks item i's affinity to group k; the
    cut change of swapping a∈gi with b∈gj is
    ``C[a,gi] + C[b,gj] − C[a,gj] − C[b,gi] + 2·W[a,b]``, evaluated for
    all (a, b) pairs at once.
    """
    if sp.issparse(W):
        if W.shape[0] > 4096:
            return [list(g) for g in groups]
        W = np.asarray(W.todense())
    W = np.asarray(W, dtype=np.float64)
    groups = [list(g) for g in groups]
    n = W.shape[0]
    g = len(groups)
    if g < 2:
        return [sorted(grp) for grp in groups]

    indicator = np.zeros((n, g), dtype=np.float64)
    for gi, members in enumerate(groups):
        indicator[members, gi] = 1.0
    C = W @ indicator  # C[i, k]: affinity of item i to group k

    def apply_swap(gi, ia, gj, ib):
        a, b = groups[gi][ia], groups[gj][ib]
        groups[gi][ia], groups[gj][ib] = b, a
        C[:, gi] += W[:, b] - W[:, a]
        C[:, gj] += W[:, a] - W[:, b]

    for _ in range(max_passes):
        improved = False
        for gi in range(g):
            for gj in range(gi + 1, g):
                while True:
                    ga = np.asarray(groups[gi], dtype=np.intp)
                    gb = np.asarray(groups[gj], dtype=np.intp)
                    delta = (
                        C[ga, gi][:, None] + C[gb, gj][None, :]
                        - C[ga, gj][:, None] - C[gb, gi][None, :]
                        + 2.0 * W[np.ix_(ga, gb)]
                    )
                    ia, ib = np.unravel_index(np.argmin(delta), delta.shape)
                    if delta[ia, ib] >= -1e-12:
                        break
                    apply_swap(gi, int(ia), gj, int(ib))
                    improved = True
        if not improved:
            break
    return [sorted(grp) for grp in groups]
