"""``repro.placement`` — process placement and dynamic rank reordering.

TreeMatch (the paper's [11]) plus baseline mappers, placement metrics,
and the Fig. 1 dynamic rank-reordering algorithm built on the
monitoring library.
"""

from repro.placement.baselines import (  # noqa: F401
    greedy_edge_placement,
    identity_placement,
    random_placement,
    round_robin_placement,
)
from repro.placement.grouping import aggregate_matrix, greedy_group, symmetrize  # noqa: F401
from repro.placement.mapping import (  # noqa: F401
    apply_permutation,
    invert_permutation,
    is_permutation,
    reorder_permutation,
    validate_placement,
)
from repro.placement.metrics import (  # noqa: F401
    hop_bytes,
    inter_node_bytes,
    level_bytes,
    modeled_cost,
)
from repro.placement.focus import (  # noqa: F401
    Focus,
    focus_from_report,
    load_focus,
    weighted_matrix,
)
from repro.placement.reorder import (  # noqa: F401
    compute_mapping,
    redistribute_data,
    reorder_from_matrix,
    reorder_iterative,
    treematch_model_seconds,
)
from repro.placement.treematch import TreeMatchError, treematch  # noqa: F401
