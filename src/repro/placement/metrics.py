"""Placement quality metrics: hop-bytes, per-level traffic, modeled cost.

These are the objective functions process placement optimizes
(Hoefler/Jeannot/Mercier, the paper's [9]): given a communication
matrix and where each rank sits, how many bytes cross each topology
level?  Rank reordering succeeds exactly when it moves bytes from the
``cluster`` row (inter-node) to the ``node``/``socket`` rows.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.simmpi.network import NetworkParams
from repro.simmpi.topology import Topology

__all__ = ["hop_bytes", "level_bytes", "inter_node_bytes", "modeled_cost"]


def _as_matrix(matrix) -> np.ndarray:
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"matrix must be square, got {m.shape}")
    return m


def hop_bytes(matrix, topology: Topology, rank_pus: Sequence[int]) -> float:
    """Σ bytes(i,j) · tree-distance(pu_i, pu_j)."""
    m = _as_matrix(matrix)
    n = m.shape[0]
    total = 0.0
    for i in range(n):
        for j in range(n):
            if m[i, j]:
                total += m[i, j] * topology.hop_distance(rank_pus[i], rank_pus[j])
    return total


def level_bytes(matrix, topology: Topology, rank_pus: Sequence[int]) -> Dict[str, float]:
    """Bytes broken down by the sharing class of each pair.

    Keys: ``"cluster"`` (inter-node), each intermediate level name,
    and ``"self"``.
    """
    m = _as_matrix(matrix)
    n = m.shape[0]
    out: Dict[str, float] = {"cluster": 0.0, "self": 0.0}
    for name in topology.level_names[:-1]:
        out[name] = 0.0
    for i in range(n):
        for j in range(n):
            if m[i, j]:
                cls = topology.common_level_name(rank_pus[i], rank_pus[j])
                out[cls] = out.get(cls, 0.0) + m[i, j]
    return out


def inter_node_bytes(matrix, topology: Topology, rank_pus: Sequence[int]) -> float:
    """Bytes crossing node boundaries — what the NIC (and the paper's
    reordering) cares about."""
    return level_bytes(matrix, topology, rank_pus)["cluster"]


def modeled_cost(
    matrix,
    topology: Topology,
    rank_pus: Sequence[int],
    params: NetworkParams,
) -> float:
    """Total serial transfer time of the matrix under the link model.

    A coarse surrogate (ignores overlap), useful to rank placements:
    Σ bytes(i,j) / bandwidth(class(i,j)).
    """
    m = _as_matrix(matrix)
    n = m.shape[0]
    total = 0.0
    for i in range(n):
        for j in range(n):
            if m[i, j]:
                cls = topology.common_level_name(rank_pus[i], rank_pus[j])
                lp = params.link_for(cls, topology)
                total += m[i, j] / lp.bandwidth
    return total
