"""TreeMatch process placement over a hierarchical topology.

Given a communication matrix and an hwloc-style tree, compute a
process→PU placement that keeps heavy-communicating processes under
the same subtree (socket, node).  Two variants are provided:

* ``bottom_up`` — the classic TreeMatch algorithm (Jeannot, Mercier,
  Tessier, TPDS 2014; the paper's [11]): group processes by the arity
  of the deepest level, aggregate the matrix, and repeat up to the
  root.  Requires that every allowed component is either fully occupied
  or untouched (the common one-rank-per-core case); processes are
  padded with zero-affinity fakes when fewer than the leaf count.

* ``top_down`` — a constrained recursive variant for *partially*
  occupied trees (e.g. the paper's CG runs: 64 ranks on 3 nodes of 24
  cores leave 8 cores idle): at each component, partition the processes
  into its children's exact occupancies with the same greedy grouping
  kernel, largest subtree first.

``algorithm="auto"`` (default) picks ``bottom_up`` when applicable.
Both accept dense NumPy or ``scipy.sparse`` matrices.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.placement.grouping import (
    aggregate_matrix,
    greedy_group,
    refine_groups,
    symmetrize,
)
from repro.simmpi.topology import Topology

__all__ = ["treematch", "TreeMatchError"]

Matrix = Union[np.ndarray, sp.spmatrix]


#: Above this many items per level the swap-refinement pass is
#: skipped (quadratic cost; greedy alone is used, as TreeMatch
#: falls back to greedy for large instances).
_REFINE_LIMIT = 256


class TreeMatchError(ValueError):
    """Invalid placement request (bad matrix, too few PUs...)."""


def treematch(
    matrix: Matrix,
    topology: Topology,
    allowed_pus: Optional[Sequence[int]] = None,
    algorithm: str = "auto",
    refine: bool = True,
) -> List[int]:
    """Compute a placement: returns ``placement[p] = PU`` for each
    process ``p``, using only PUs from ``allowed_pus`` (default: all).

    The matrix entry ``(i, j)`` is the affinity (bytes or message
    count) between processes i and j; it is symmetrized internally.
    ``refine`` enables a Kernighan-Lin swap pass after each greedy
    grouping (skipped automatically on very large levels).
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise TreeMatchError(f"matrix must be square, got {matrix.shape}")
    pus = sorted(set(int(p) for p in (allowed_pus if allowed_pus is not None
                                      else range(topology.n_pus))))
    if not pus:
        raise TreeMatchError("no allowed PUs")
    for p in pus:
        if not 0 <= p < topology.n_pus:
            raise TreeMatchError(f"PU {p} outside the topology")
    if n > len(pus):
        raise TreeMatchError(f"{n} processes but only {len(pus)} allowed PUs")
    if n == 1:
        return [pus[0]]

    if algorithm == "auto":
        algorithm = "bottom_up" if _is_fully_occupied(topology, pus) else "top_down"
    if algorithm == "bottom_up":
        if not _is_fully_occupied(topology, pus):
            raise TreeMatchError(
                "bottom_up requires fully occupied components; use top_down"
            )
        return _bottom_up(matrix, topology, pus, refine)
    if algorithm == "top_down":
        return _top_down(matrix, topology, pus, refine)
    raise TreeMatchError(f"unknown algorithm {algorithm!r}")


# ---------------------------------------------------------------------------
# occupancy analysis


def _components_by_level(topology: Topology, pus: Sequence[int]):
    """For each depth d (1..depth), the occupied components in canonical
    order with their occupied-PU lists."""
    depth = topology.depth
    levels: List[Dict[int, List[int]]] = []
    strides = [1]
    for a in reversed(topology.arities):
        strides.append(strides[-1] * a)
    strides = list(reversed(strides))  # strides[d] = leaves under a depth-d comp
    for d in range(1, depth + 1):
        stride = strides[d]
        comps: Dict[int, List[int]] = {}
        for p in pus:
            comps.setdefault(p // stride, []).append(p)
        levels.append(dict(sorted(comps.items())))
    return levels, strides


def _is_fully_occupied(topology: Topology, pus: Sequence[int]) -> bool:
    """True iff every component touched by ``pus`` is completely filled."""
    levels, strides = _components_by_level(topology, pus)
    bottom = levels[-1]
    stride = strides[topology.depth]
    assert stride == 1
    # A touched bottom-level component must contain all its PUs, and
    # recursively: checking the bottom level suffices only for leaves;
    # check all levels.
    for d in range(1, topology.depth + 1):
        per_comp = strides[d]
        for comp, members in levels[d - 1].items():
            if len(members) != per_comp:
                return False
    return True


# ---------------------------------------------------------------------------
# classic bottom-up TreeMatch


def _bottom_up(matrix: Matrix, topology: Topology, pus: Sequence[int],
               refine: bool = True) -> List[int]:
    n = matrix.shape[0]
    m = len(pus)
    W = symmetrize(matrix)
    if m > n:
        W = _pad(W, m)  # fake, zero-affinity processes fill spare cores

    # items[i] is the ordered list of processes currently fused into
    # one object; the nested order becomes the leaf order at the end.
    items: List[List[int]] = [[p] for p in range(m)]

    arities = topology.arities
    depth = topology.depth
    for d in range(depth - 1, -1, -1):
        if len(items) == 1:
            break
        arity = arities[d]
        n_groups = len(items) // arity
        if n_groups == 0:
            n_groups, arity = 1, len(items)
        sizes = [arity] * n_groups
        groups = greedy_group(W, sizes)
        if refine and len(items) <= _REFINE_LIMIT:
            groups = refine_groups(W, groups)
        items = [sum((items[i] for i in g), []) for g in groups]
        W = aggregate_matrix(W, groups)

    flat = [p for item in items for p in item]
    assert len(flat) == m
    placement = [-1] * n
    for slot, proc in enumerate(flat):
        if proc < n:  # drop the fakes
            placement[proc] = pus[slot]
    return placement


def _pad(W: Matrix, m: int) -> Matrix:
    n = W.shape[0]
    if sp.issparse(W):
        out = sp.lil_matrix((m, m), dtype=np.float64)
        out[:n, :n] = W
        return out.tocsr()
    out = np.zeros((m, m), dtype=np.float64)
    out[:n, :n] = W
    return out


# ---------------------------------------------------------------------------
# constrained top-down variant


def _top_down(matrix: Matrix, topology: Topology, pus: Sequence[int],
              refine: bool = True) -> List[int]:
    n = matrix.shape[0]
    m = len(pus)
    W = symmetrize(matrix)
    if m > n:
        W = _pad(W, m)

    placement = [-1] * n
    all_procs = np.arange(m)
    _split(W, all_procs, topology, pus, 1, placement, n, refine)
    return placement


def _split(
    W: Matrix,
    procs: np.ndarray,
    topology: Topology,
    pus: Sequence[int],
    depth: int,
    placement: List[int],
    n_real: int,
    refine: bool = True,
) -> None:
    """Recursively partition ``procs`` over the occupied children of
    the current subtree (identified by its occupied ``pus``)."""
    if len(procs) == 1:
        proc = int(procs[0])
        if proc < n_real:
            placement[proc] = pus[0]
        return
    if depth > topology.depth:
        # Several procs on one PU cannot happen: occupancy bounds sizes.
        raise TreeMatchError("internal: recursion below the leaves")

    stride = 1
    for a in topology.arities[depth:]:
        stride *= a
    children: Dict[int, List[int]] = {}
    for p in pus:
        children.setdefault(p // stride, []).append(p)
    kids = sorted(children.items(), key=lambda kv: (-len(kv[1]), kv[0]))

    if len(kids) == 1:
        _split(W, procs, topology, kids[0][1], depth + 1, placement, n_real,
               refine)
        return

    sizes = [len(members) for _, members in kids]
    sub = W[np.ix_(procs, procs)] if not sp.issparse(W) else W[procs][:, procs].tocsr()
    groups = greedy_group(sub, sizes)
    if refine and len(procs) <= _REFINE_LIMIT:
        groups = refine_groups(sub, groups)
    for (comp, members), group in zip(kids, groups):
        sub_procs = procs[np.asarray(group, dtype=np.intp)]
        _split(W, sub_procs, topology, members, depth + 1, placement, n_real,
               refine)
