"""Baseline placement strategies to compare TreeMatch against.

All return the same shape as :func:`repro.placement.treematch.treematch`:
``placement[p] = PU``, using only the allowed PUs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.simmpi.topology import Topology

__all__ = ["identity_placement", "random_placement", "round_robin_placement",
           "greedy_edge_placement", "local_search_placement"]


def _pus(topology: Topology, allowed_pus: Optional[Sequence[int]], n: int) -> List[int]:
    pus = sorted(set(allowed_pus)) if allowed_pus is not None else list(
        range(topology.n_pus)
    )
    if n > len(pus):
        raise ValueError(f"{n} processes > {len(pus)} allowed PUs")
    return pus


def identity_placement(n: int, topology: Topology,
                       allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """Process p on the p-th allowed PU (packed / by-slot)."""
    return _pus(topology, allowed_pus, n)[:n]


def random_placement(n: int, topology: Topology,
                     allowed_pus: Optional[Sequence[int]] = None,
                     seed: int = 0) -> List[int]:
    pus = _pus(topology, allowed_pus, n)
    rng = np.random.default_rng(seed)
    return [pus[i] for i in rng.permutation(len(pus))[:n]]


def round_robin_placement(n: int, topology: Topology,
                          allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """Deal processes across nodes (the paper's RR baseline)."""
    pus = _pus(topology, allowed_pus, n)
    by_node: dict = {}
    for pu in pus:
        by_node.setdefault(topology.node_of(pu), []).append(pu)
    queues = [sorted(v) for _, v in sorted(by_node.items())]
    out: List[int] = []
    node = 0
    while len(out) < n:
        hops = 0
        while not queues[node % len(queues)]:
            node += 1
            hops += 1
            if hops > len(queues):
                raise ValueError("ran out of PUs")  # pragma: no cover
        out.append(queues[node % len(queues)].pop(0))
        node += 1
    return out


def greedy_edge_placement(matrix, topology: Topology,
                          allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """A simple non-hierarchical comparator: place heaviest-talking
    pairs on adjacent free PUs, in descending edge weight order."""
    m = np.asarray(matrix, dtype=np.float64)
    n = m.shape[0]
    pus = _pus(topology, allowed_pus, n)
    w = m + m.T
    order = np.dstack(np.unravel_index(np.argsort(w, axis=None)[::-1], w.shape))[0]
    placement = [-1] * n
    free = list(pus)
    for i, j in order:
        if i >= j or w[i, j] <= 0:
            continue
        if placement[i] == -1 and placement[j] == -1 and len(free) >= 2:
            placement[i] = free.pop(0)
            placement[j] = free.pop(0)
        elif placement[i] == -1 and free:
            placement[i] = free.pop(0)
        elif placement[j] == -1 and free:
            placement[j] = free.pop(0)
    for p in range(n):
        if placement[p] == -1:
            placement[p] = free.pop(0)
    return placement


def local_search_placement(matrix, topology: Topology,
                           allowed_pus: Optional[Sequence[int]] = None,
                           start: Optional[Sequence[int]] = None,
                           max_rounds: int = 50) -> List[int]:
    """Pairwise-swap hill climbing on hop-bytes.

    Starts from ``start`` (default: :func:`greedy_edge_placement`) and
    repeatedly applies the first rank-pair swap that strictly lowers
    Σ bytes(i,j)·distance(pu_i, pu_j), until a full pass finds none (a
    2-opt local optimum) or ``max_rounds`` passes elapse.  Swap deltas
    are evaluated incrementally — O(n) per candidate pair instead of
    recomputing the O(n²) objective — so a pass over all pairs is
    O(n³) worst case but milliseconds at the paper's rank counts.
    """
    m = np.asarray(matrix, dtype=np.float64)
    n = m.shape[0]
    if start is None:
        placement = greedy_edge_placement(m, topology, allowed_pus)
    else:
        placement = list(start)
        if len(placement) != n:
            raise ValueError(
                f"start has {len(placement)} entries for {n} processes")
    w = m + m.T
    np.fill_diagonal(w, 0.0)
    # Distances between the n *assigned* PUs; sig[i] indexes rank i's
    # PU in that table so a swap only exchanges two sig entries.
    pud = np.array([[topology.hop_distance(a, b) for b in placement]
                    for a in placement], dtype=np.float64)
    sig = np.arange(n)
    # P[i, j] = distance between the PUs currently holding ranks i and
    # j; row_dot[j] = w[j] · P[j].  For a fixed i, the swap deltas for
    # every j come from four rank-one products (the i–j pair itself is
    # unaffected: distance is symmetric), so one pass is O(n²) numpy
    # work per pivot instead of O(n³) scalar work overall.
    P = pud[np.ix_(sig, sig)]
    row_dot = np.einsum("jk,jk->j", w, P)
    for _ in range(max_rounds):
        improved = False
        for i in range(n):
            delta = (P @ w[i] - w[i] @ P[i]
                     - row_dot + w @ P[i] + 2.0 * w[:, i] * P[i])
            better = np.nonzero(delta[i + 1:] < -1e-12)[0]
            if better.size:
                j = i + 1 + int(better[0])
                sig[i], sig[j] = sig[j], sig[i]
                P = pud[np.ix_(sig, sig)]
                row_dot = np.einsum("jk,jk->j", w, P)
                improved = True
        if not improved:
            break
    return [placement[s] for s in sig]
