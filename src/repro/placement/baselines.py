"""Baseline placement strategies to compare TreeMatch against.

All return the same shape as :func:`repro.placement.treematch.treematch`:
``placement[p] = PU``, using only the allowed PUs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.simmpi.topology import Topology

__all__ = ["identity_placement", "random_placement", "round_robin_placement",
           "greedy_edge_placement"]


def _pus(topology: Topology, allowed_pus: Optional[Sequence[int]], n: int) -> List[int]:
    pus = sorted(set(allowed_pus)) if allowed_pus is not None else list(
        range(topology.n_pus)
    )
    if n > len(pus):
        raise ValueError(f"{n} processes > {len(pus)} allowed PUs")
    return pus


def identity_placement(n: int, topology: Topology,
                       allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """Process p on the p-th allowed PU (packed / by-slot)."""
    return _pus(topology, allowed_pus, n)[:n]


def random_placement(n: int, topology: Topology,
                     allowed_pus: Optional[Sequence[int]] = None,
                     seed: int = 0) -> List[int]:
    pus = _pus(topology, allowed_pus, n)
    rng = np.random.default_rng(seed)
    return [pus[i] for i in rng.permutation(len(pus))[:n]]


def round_robin_placement(n: int, topology: Topology,
                          allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """Deal processes across nodes (the paper's RR baseline)."""
    pus = _pus(topology, allowed_pus, n)
    by_node: dict = {}
    for pu in pus:
        by_node.setdefault(topology.node_of(pu), []).append(pu)
    queues = [sorted(v) for _, v in sorted(by_node.items())]
    out: List[int] = []
    node = 0
    while len(out) < n:
        hops = 0
        while not queues[node % len(queues)]:
            node += 1
            hops += 1
            if hops > len(queues):
                raise ValueError("ran out of PUs")  # pragma: no cover
        out.append(queues[node % len(queues)].pop(0))
        node += 1
    return out


def greedy_edge_placement(matrix, topology: Topology,
                          allowed_pus: Optional[Sequence[int]] = None) -> List[int]:
    """A simple non-hierarchical comparator: place heaviest-talking
    pairs on adjacent free PUs, in descending edge weight order."""
    m = np.asarray(matrix, dtype=np.float64)
    n = m.shape[0]
    pus = _pus(topology, allowed_pus, n)
    w = m + m.T
    order = np.dstack(np.unravel_index(np.argsort(w, axis=None)[::-1], w.shape))[0]
    placement = [-1] * n
    free = list(pus)
    for i, j in order:
        if i >= j or w[i, j] <= 0:
            continue
        if placement[i] == -1 and placement[j] == -1 and len(free) >= 2:
            placement[i] = free.pop(0)
            placement[j] = free.pop(0)
        elif placement[i] == -1 and free:
            placement[i] = free.pop(0)
        elif placement[j] == -1 and free:
            placement[j] = free.pop(0)
    for p in range(n):
        if placement[p] == -1:
            placement[p] = free.pop(0)
    return placement
