"""Dynamic rank reordering with introspection monitoring (paper §5, Fig. 1).

The algorithm, for an iterative computation:

1. monitor the first iteration with a monitoring session;
2. gather the byte matrix (``size_mat``) on rank 0
   (``MPI_M_rootgather_data``);
3. rank 0 computes an optimized mapping ``k`` with TreeMatch, from the
   machine topology and the measured communication pattern;
4. broadcast ``k``; build the optimized communicator with
   ``MPI_Comm_split(comm, 0, k[rank])`` — the process of original rank
   i gets rank k[i];
5. redistribute data (rank i receives the payload of its new logical
   role from rank k[i]);
6. run the remaining iterations on the optimized communicator.

The TreeMatch computation itself takes time (paper Table 1); rank 0's
virtual clock is charged with :func:`treematch_model_seconds`, a power
law fitted to Table 1, so the trade-off heatmap of Fig. 6 (reordering
cost vs. iteration gain) is reproduced honestly.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.obs.spans import virtual_span
from repro.placement.mapping import invert_permutation, reorder_permutation
from repro.placement.treematch import treematch

__all__ = [
    "treematch_model_seconds",
    "compute_mapping",
    "reorder_from_matrix",
    "co_reorder_from_matrix",
    "redistribute_data",
    "co_redistribute_data",
    "reorder_iterative",
]


def treematch_model_seconds(n: int) -> float:
    """Modeled TreeMatch wall-clock for an n×n communication matrix.

    Power law fitted to the paper's Table 1 (2.6 s at 8192 … 88.7 s at
    65536, slope ≈ 1.7); extrapolates to ~7 ms at 256 processes, in
    line with the paper's "up to 0.02 seconds" for 256 ranks (§7).
    """
    if n <= 1:
        return 0.0
    return 2.6 * (n / 8192.0) ** 1.7


def compute_mapping(size_mat: np.ndarray, cluster, world_ranks) -> np.ndarray:
    """The paper's ``compute_mapping(local_topology, size_mat)``.

    Returns the permutation ``k`` (original rank → new rank) for the
    processes whose world ranks are ``world_ranks``, pinned per the
    cluster binding.
    """
    n = len(world_ranks)
    mat = np.asarray(size_mat, dtype=np.float64).reshape(n, n)
    pus = [cluster.binding[w] for w in world_ranks]
    placement = treematch(mat, cluster.topology, allowed_pus=pus)
    return reorder_permutation(placement, pus)


def reorder_from_matrix(
    comm,
    size_mat: Optional[np.ndarray],
    charge_mapping_time: bool = True,
) -> Tuple[object, np.ndarray]:
    """Lines 7–11 of Fig. 1: mapping at rank 0, bcast of k, comm split.

    ``size_mat`` is only significant at rank 0 (the gathered byte
    matrix).  Returns ``(opt_comm, k)`` on every rank.
    """
    me = comm.rank
    rec = comm.engine._obs_spans
    proc = comm._current() if rec is not None else None
    with virtual_span(rec, proc, "reorder.from_matrix"):
        if me == 0:
            if size_mat is None:
                raise ValueError("rank 0 must supply the gathered size matrix")
            with virtual_span(rec, proc, "treematch.compute_mapping",
                              {"n": comm.size}):
                k = compute_mapping(size_mat, comm.engine.cluster, comm.group)
                if charge_mapping_time:
                    comm.compute(treematch_model_seconds(comm.size))
            k = np.asarray(k, dtype=np.int32)
        else:
            k = None
        k = comm.bcast(k, root=0)
        opt_comm = comm.split(0, int(k[me]))
    return opt_comm, k


def co_reorder_from_matrix(
    comm,
    size_mat: Optional[np.ndarray],
    charge_mapping_time: bool = True,
):
    """Resumable :func:`reorder_from_matrix` for co rank programs."""
    me = comm.rank
    rec = comm.engine._obs_spans
    proc = comm._current() if rec is not None else None
    with virtual_span(rec, proc, "reorder.from_matrix"):
        if me == 0:
            if size_mat is None:
                raise ValueError("rank 0 must supply the gathered size matrix")
            with virtual_span(rec, proc, "treematch.compute_mapping",
                              {"n": comm.size}):
                k = compute_mapping(size_mat, comm.engine.cluster, comm.group)
                if charge_mapping_time:
                    yield from comm.co_compute(treematch_model_seconds(comm.size))
            k = np.asarray(k, dtype=np.int32)
        else:
            k = None
        k = yield from comm.co_bcast(k, root=0)
        opt_comm = yield from comm.co_split(0, int(k[me]))
    return opt_comm, k


def redistribute_data(comm, k: np.ndarray, payload=None, nbytes: int = 0) -> object:
    """Line 12 of Fig. 1: move each logical rank's data to its new owner.

    The process that takes over logical rank j (the one with k[i] == j)
    receives the payload from the process whose *original* rank is j —
    i.e. rank i receives from rank k[i] and sends to rank
    k⁻¹[i].  Returns the received payload (or the local one when the
    rank keeps its role).
    """
    k = np.asarray(k, dtype=np.intp)
    me = comm.rank
    inv = invert_permutation(k)
    send_to = int(inv[me])  # the process whose new logical rank is me's old one
    recv_from = int(k[me])
    if send_to == me and recv_from == me:
        return payload
    req = comm.irecv(source=recv_from, tag=4242) if recv_from != me else None
    if send_to != me:
        comm.isend(payload, dest=send_to, tag=4242, nbytes=nbytes if payload is None else None)
    if req is not None:
        return req.wait().payload
    return payload


def co_redistribute_data(comm, k: np.ndarray, payload=None, nbytes: int = 0):
    """Resumable :func:`redistribute_data` for co rank programs."""
    k = np.asarray(k, dtype=np.intp)
    me = comm.rank
    inv = invert_permutation(k)
    send_to = int(inv[me])
    recv_from = int(k[me])
    if send_to == me and recv_from == me:
        return payload
    req = comm.irecv(source=recv_from, tag=4242) if recv_from != me else None
    if send_to != me:
        yield from comm.co_isend(payload, dest=send_to, tag=4242,
                                 nbytes=nbytes if payload is None else None)
    if req is not None:
        msg = yield from req.co_wait()
        return msg.payload
    return payload


def reorder_iterative(
    comm,
    compute_iteration: Callable[[int, object], None],
    max_it: int,
    flags: Flags = Flags.ALL_COMM,
    payload=None,
    redistribute_nbytes: int = 0,
    manage_env: bool = True,
    charge_mapping_time: bool = True,
) -> Tuple[object, np.ndarray]:
    """The complete Fig. 1 algorithm.

    Runs ``compute_iteration(1, comm)`` under monitoring, reorders, and
    runs iterations ``2..max_it`` on the optimized communicator.
    Returns ``(opt_comm, k)``.
    """
    if manage_env:
        raise_for_code(mapi.mpi_m_init())
    rec = comm.engine._obs_spans
    proc = comm._current() if rec is not None else None
    err, msid = mapi.mpi_m_start(comm)
    raise_for_code(err)
    with virtual_span(rec, proc, "reorder.monitored_iteration",
                      {"iteration": 1}):
        compute_iteration(1, comm)
    raise_for_code(mapi.mpi_m_suspend(msid))
    err, _, size_mat = mapi.mpi_m_rootgather_data(
        msid, 0, MPI_M_DATA_IGNORE, None, flags
    )
    raise_for_code(err)
    raise_for_code(mapi.mpi_m_free(msid))

    opt_comm, k = reorder_from_matrix(comm, size_mat,
                                      charge_mapping_time=charge_mapping_time)
    with virtual_span(rec, proc, "reorder.redistribute"):
        redistribute_data(comm, k, payload=payload, nbytes=redistribute_nbytes)
    for it in range(2, max_it + 1):
        with virtual_span(rec, proc, f"iteration[{it}]"):
            compute_iteration(it, opt_comm)
    if manage_env:
        raise_for_code(mapi.mpi_m_finalize())
    return opt_comm, k
