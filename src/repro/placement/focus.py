"""Feed ``repro.obs diagnose`` findings back into placement search.

The diagnosis report (:mod:`repro.obs.diagnose`) names *where* a run
lost time: straggler ranks that arrived late at collectives, and link
classes whose bytes·latency cost dominates.  A :class:`Focus` turns
those findings into a bias on the candidate *generators* of the
what-if search: the communication matrix the matrix-driven strategies
(treematch / greedy / local) optimize is re-weighted so traffic
touching a straggler rank, or crossing a congested link class under
the recorded binding, counts for more.  Scoring is untouched — every
candidate is still judged by its honest replayed makespan on the true
matrix — so a focus can only change which placements get *proposed*,
never how they are *ranked*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

import numpy as np

__all__ = ["Focus", "focus_from_report", "load_focus", "weighted_matrix"]

#: Default multiplier for focused rows/columns/pairs.  Applied once per
#: matching axis, so a pair that is both straggler-adjacent and on a
#: congested link compounds.
DEFAULT_WEIGHT = 4.0


@dataclass(frozen=True)
class Focus:
    """Optimization targets distilled from a diagnosis report."""

    straggler_ranks: tuple = ()
    congested_classes: tuple = ()
    weight: float = DEFAULT_WEIGHT

    def __bool__(self) -> bool:
        return bool(self.straggler_ranks or self.congested_classes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "straggler_ranks": [int(r) for r in self.straggler_ranks],
            "congested_classes": [str(c) for c in self.congested_classes],
            "weight": float(self.weight),
        }

    @classmethod
    def from_dict(cls, doc: Optional[Dict[str, Any]]) -> "Focus":
        if not doc:
            return cls()
        return cls(
            straggler_ranks=tuple(
                int(r) for r in doc.get("straggler_ranks", ())),
            congested_classes=tuple(
                str(c) for c in doc.get("congested_classes", ())),
            weight=float(doc.get("weight", DEFAULT_WEIGHT)),
        )

    def cache_key(self) -> str:
        """Canonical string for result-cache keying (sorted, compact)."""
        d = self.to_dict()
        d["straggler_ranks"] = sorted(d["straggler_ranks"])
        d["congested_classes"] = sorted(d["congested_classes"])
        return json.dumps(d, sort_keys=True, separators=(",", ":"))


def focus_from_report(doc: Dict[str, Any],
                      weight: float = DEFAULT_WEIGHT) -> Focus:
    """Extract a :class:`Focus` from a parsed diagnosis report.

    Reads the ``stragglers`` findings' ranks and the
    ``congested_links`` findings' subjects; every other pass is left to
    its own follow-up (algorithm mismatch feeds ``--substitute``, not
    the placement axis).
    """
    findings = doc.get("findings")
    if not isinstance(findings, list):
        raise ValueError(
            "not a diagnosis report: missing the 'findings' list "
            "(expected the JSON written by `repro.obs diagnose --report`)")
    ranks = []
    classes = []
    for f in findings:
        if f.get("pass") == "stragglers":
            rank = (f.get("detail") or {}).get("rank")
            if rank is not None:
                ranks.append(int(rank))
        elif f.get("pass") == "congested_links":
            cls = f.get("subject")
            # "self" traffic never crosses a wire; re-weighting it
            # could only distract the mappers.
            if cls and cls != "self":
                classes.append(str(cls))
    return Focus(straggler_ranks=tuple(dict.fromkeys(ranks)),
                 congested_classes=tuple(dict.fromkeys(classes)),
                 weight=weight)


def load_focus(path: str, weight: float = DEFAULT_WEIGHT) -> Focus:
    """Load a ``repro.obs diagnose`` JSON report as a :class:`Focus`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    try:
        return focus_from_report(doc, weight=weight)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def weighted_matrix(matrix, topology, binding: Sequence[int],
                    focus: Focus) -> "np.ndarray":
    """Re-weight a communication matrix toward the focus targets.

    Rows and columns of straggler ranks are multiplied by
    ``focus.weight`` (their traffic is what the late arrivals wait
    behind), as are pairs whose *recorded* binding routes them over a
    congested link class — the congestion the report measured existed
    under that binding, so that is the traffic worth relocating.
    Returns a float64 copy; the input is never modified.
    """
    out = np.asarray(matrix, dtype=np.float64).copy()
    if not focus:
        return out
    n = out.shape[0]
    w = float(focus.weight)
    for rank in focus.straggler_ranks:
        if 0 <= rank < n:
            out[rank, :] *= w
            out[:, rank] *= w
    if focus.congested_classes:
        wanted = set(focus.congested_classes)
        for i in range(n):
            for j in range(n):
                if i == j or not out[i, j]:
                    continue
                cls = topology.common_level_name(binding[i], binding[j])
                if cls in wanted:
                    out[i, j] *= w
    return out
