"""Paper Fig. 2 + Fig. 3 (§6.1): hardware counters vs. introspection.

Two ranks on two Infiniband nodes.  Rank 0 repeatedly sends a random
1–800 KB message and sleeps 50–1000 ms; a sampler polls, every 10 ms,
both the NIC's ``port_xmit_data`` counter (multiplied by the lane
count, as the Mellanox documentation prescribes) and the introspection
library (session read + reset, "we use the reset features of the
library session to monitor only what has happened between two
measurements").

Fig. 2 is the two per-window time series; Fig. 3 the cumulative curves.
The claim to reproduce: the two monitors report the same volumes with a
barely-visible time offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.experiments.common import (Series, experiment_parser,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.simmpi import Cluster, Engine

__all__ = ["CounterComparison", "run", "report", "main", "DEFAULT_SIZE_RANGE"]

DEFAULT_SIZE_RANGE = (1_000, 800_000)  # the paper's random 1–800 KB sends

_SENTINEL_TAG = 99
_DATA_TAG = 7


@dataclass
class CounterComparison:
    """The experiment outcome: aligned 10 ms samples of both monitors."""

    times: np.ndarray  # sample instants (s)
    hw_window: np.ndarray  # bytes seen by the NIC counter per window
    mon_window: np.ndarray  # bytes seen by the introspection library
    total_sent: int  # ground truth: bytes rank 0 passed to send()

    @property
    def hw_cumulative(self) -> np.ndarray:
        return np.cumsum(self.hw_window)

    @property
    def mon_cumulative(self) -> np.ndarray:
        return np.cumsum(self.mon_window)

    @property
    def max_cumulative_lag(self) -> int:
        """Largest instantaneous |HW − introspection| cumulative gap."""
        return int(np.abs(self.hw_cumulative - self.mon_cumulative).max())


def _sender(comm, duration: float, sample_dt: float, seed: int,
            size_range=DEFAULT_SIZE_RANGE, sleep_range=(0.05, 1.0)):
    engine = comm.engine
    nic = engine.network.nic
    lanes = nic.lanes
    my_node = engine.cluster.node_of_rank(comm.world_rank(comm.rank))

    raise_for_code(mapi.mpi_m_init())
    err, msid = mapi.mpi_m_start(comm)
    raise_for_code(err)

    rng = np.random.default_rng(seed)
    times: List[float] = []
    hw: List[int] = []
    mon: List[int] = []
    hw_prev = nic.port_xmit_data(my_node, comm.time) * lanes
    next_sample = comm.time + sample_dt
    total_sent = 0

    def sample() -> None:
        nonlocal hw_prev
        t = comm.time
        hw_now = nic.port_xmit_data(my_node, t) * lanes
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, sizes = mapi.mpi_m_get_data(
            msid, MPI_M_DATA_IGNORE, None, Flags.ALL_COMM
        )
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_reset(msid))
        raise_for_code(mapi.mpi_m_continue(msid))
        times.append(t)
        hw.append(hw_now - hw_prev)
        mon.append(int(sizes.sum()))
        hw_prev = hw_now

    t_end = comm.time + duration
    while comm.time < t_end:
        size = int(rng.integers(size_range[0], size_range[1]))
        comm.send(None, dest=1, tag=_DATA_TAG, nbytes=size)
        total_sent += size
        sleep_for = float(rng.uniform(*sleep_range))
        target = comm.time + sleep_for
        while comm.time < target:
            if next_sample <= target:
                comm.sleep(max(0.0, next_sample - comm.time))
                sample()
                next_sample += sample_dt
            else:
                comm.sleep(target - comm.time)
    # Final drain sample, then stop the receiver.
    comm.sleep(max(0.0, next_sample - comm.time))
    sample()
    comm.send(None, dest=1, tag=_SENTINEL_TAG, nbytes=0)
    raise_for_code(mapi.mpi_m_suspend(msid))
    raise_for_code(mapi.mpi_m_free(msid))
    raise_for_code(mapi.mpi_m_finalize())
    return CounterComparison(
        times=np.asarray(times),
        hw_window=np.asarray(hw, dtype=np.int64),
        mon_window=np.asarray(mon, dtype=np.int64),
        total_sent=total_sent,
    )


def _receiver(comm):
    while True:
        msg = comm.recv(source=0)
        if msg.tag == _SENTINEL_TAG:
            return None


def run(duration: float = 5.0, sample_dt: float = 0.010, seed: int = 42,
        jitter: float = 0.0, size_range=DEFAULT_SIZE_RANGE) -> CounterComparison:
    """Run the §6.1 comparison; returns the aligned sample series."""
    cluster = Cluster.ib_pair(jitter=jitter, seed=seed)
    engine = Engine(cluster, seed=seed)

    def program(comm):
        if comm.rank == 0:
            return _sender(comm, duration, sample_dt, seed,
                           size_range=size_range)
        return _receiver(comm)

    results = engine.run(program)
    return results[0]


def report(result: CounterComparison) -> str:
    """Text rendering of Fig. 2/3's takeaways."""
    rows = [
        ("bytes sent by the program", result.total_sent),
        ("bytes seen by HW counters", int(result.hw_window.sum())),
        ("bytes seen by introspection", int(result.mon_window.sum())),
        ("max cumulative lag (bytes)", result.max_cumulative_lag),
        ("samples (10 ms windows)", len(result.times)),
    ]
    series = Series("volumes")
    return render_table(
        ["quantity", "value"], rows,
        title="Fig. 2/3 — HW counters vs introspection monitoring",
    )


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.fig2_counters", __doc__,
        sizes_help="message-size range as LO,HI bytes "
                   f"(default {DEFAULT_SIZE_RANGE[0]},{DEFAULT_SIZE_RANGE[1]})",
        default_seed=42,
    )
    parser.add_argument("--duration", type=float, default=5.0,
                        help="virtual seconds of sender activity")
    args = parser.parse_args(argv)
    size_range = DEFAULT_SIZE_RANGE
    if args.sizes is not None:
        if len(args.sizes) != 2:
            parser.error("--sizes takes exactly LO,HI for this experiment")
        size_range = (args.sizes[0], args.sizes[1])
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        print(report(run(duration=args.duration, seed=args.seed,
                         size_range=size_range)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
