"""CLI: run any paper experiment and print its report.

Usage::

    python -m repro.experiments fig2
    python -m repro.experiments fig4
    python -m repro.experiments fig5 --op reduce
    python -m repro.experiments fig6
    python -m repro.experiments fig7
    python -m repro.experiments table1
    python -m repro.experiments all

Set ``REPRO_FULL=1`` for the paper-scale grids.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    fig2_counters,
    fig4_overhead,
    fig5_collectives,
    fig6_allgather,
    fig7_cg,
    table1_treematch,
)


def run_fig2(_args) -> None:
    print(fig2_counters.report(fig2_counters.run()))


def run_fig4(_args) -> None:
    print(fig4_overhead.report(fig4_overhead.run()))


def run_fig5(args) -> None:
    ops = [args.op] if args.op else ["reduce", "bcast"]
    for op in ops:
        print(fig5_collectives.report(fig5_collectives.run(op)))
        print()


def run_fig6(_args) -> None:
    print(fig6_allgather.report(fig6_allgather.run()))


def run_fig7(_args) -> None:
    print(fig7_cg.report(fig7_cg.run()))


def run_table1(_args) -> None:
    print(table1_treematch.report(table1_treematch.run()))


RUNNERS = {
    "fig2": run_fig2,
    "fig3": run_fig2,  # same experiment, cumulative view
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "table1": run_table1,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the paper.",
    )
    parser.add_argument("experiment", choices=sorted(RUNNERS) + ["all"])
    parser.add_argument("--op", choices=["reduce", "bcast"], default=None,
                        help="fig5 only: run a single collective")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("fig2", "fig4", "fig5", "fig6", "fig7", "table1"):
            print(f"===== {name} =====")
            RUNNERS[name](args)
            print()
    else:
        RUNNERS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
