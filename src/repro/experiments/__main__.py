"""CLI: run any paper experiment and print its report.

Usage::

    python -m repro.experiments fig2
    python -m repro.experiments fig4
    python -m repro.experiments fig5 --op reduce
    python -m repro.experiments fig6 --sizes 1,100,10000
    python -m repro.experiments fig7 --seed 3
    python -m repro.experiments table1
    python -m repro.experiments all

Every experiment accepts ``--seed`` and ``--sizes`` (the shared parser
in :mod:`repro.experiments.common`); each ``fig*.py`` module is also
directly runnable (``python -m repro.experiments.fig5_collectives``)
with experiment-specific extras.  Set ``REPRO_FULL=1`` for the
paper-scale grids.  For cached, parallel, fault-tolerant runs of the
same grids use ``python -m repro.sweep run``.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    fig2_counters,
    fig4_overhead,
    fig5_collectives,
    fig6_allgather,
    fig7_cg,
    table1_treematch,
)
from repro.experiments.common import experiment_parser


def run_fig2(args) -> None:
    size_range = fig2_counters.DEFAULT_SIZE_RANGE
    if args.sizes is not None and len(args.sizes) == 2:
        size_range = (args.sizes[0], args.sizes[1])
    seed = 42 if args.seed is None else args.seed
    print(fig2_counters.report(
        fig2_counters.run(seed=seed, size_range=size_range)))


def run_fig4(args) -> None:
    print(fig4_overhead.report(fig4_overhead.run(
        sizes=args.sizes or fig4_overhead.DEFAULT_SIZES, seed=args.seed or 0)))


def run_fig5(args) -> None:
    ops = [args.op] if args.op else ["reduce", "bcast"]
    for op in ops:
        print(fig5_collectives.report(
            fig5_collectives.run(op, sizes=args.sizes, seed=args.seed or 0)))
        print()


def run_fig6(args) -> None:
    print(fig6_allgather.report(
        fig6_allgather.run(sizes=args.sizes, seed=args.seed or 0)))


def run_fig7(args) -> None:
    print(fig7_cg.report(
        fig7_cg.run(rank_counts=args.sizes, seed=args.seed or 0)))


def run_table1(args) -> None:
    print(table1_treematch.report(
        table1_treematch.run(sizes=args.sizes, seed=args.seed or 0)))


RUNNERS = {
    "fig2": run_fig2,
    "fig3": run_fig2,  # same experiment, cumulative view
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "table1": run_table1,
}


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments",
        "Regenerate a table/figure of the paper.",
        sizes_help="experiment-specific size grid "
                   "(buffer sizes, byte sizes, NP counts or matrix orders)",
        default_seed=None,
    )
    parser.add_argument("experiment", choices=sorted(RUNNERS) + ["all"])
    parser.add_argument("--op", choices=["reduce", "bcast"], default=None,
                        help="fig5 only: run a single collective")
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for name in ("fig2", "fig4", "fig5", "fig6", "fig7", "table1"):
            print(f"===== {name} =====")
            RUNNERS[name](args)
            print()
    else:
        RUNNERS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
