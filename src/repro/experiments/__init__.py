"""``repro.experiments`` — one driver per paper table/figure.

See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.  Every driver has a ``run(...)`` returning
structured records and a ``report(records)`` rendering the rows/series
the paper plots.
"""

from repro.experiments import (  # noqa: F401
    fig2_counters,
    fig4_overhead,
    fig5_collectives,
    fig6_allgather,
    fig7_cg,
    table1_treematch,
)
from repro.experiments.common import Series, full_scale, render_table  # noqa: F401
