"""Paper Fig. 6 (§6.4): reordering gain heatmap for grouped allgathers.

Groups of ranks perform an MPI_Allgather per iteration; with the
round-robin binding every group's communicator spans all the nodes.
Per cell (buffer size × iteration count): time ``t1`` = n un-reordered
iterations, ``t2`` = the reordering itself (monitor one iteration,
gather, TreeMatch — whose computation time is charged from the Table-1
model — broadcast, split), ``t3`` = n reordered iterations.

Gain, as the paper defines it: ``100 · (t1 − (t2 + t3)) / t1``.
Negative (red) where iterations are few or buffers small — the
reordering cost is not amortized; strongly positive (green) for large
buffers and many iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.apps.microbench import grouped_allgather_benchmark
from repro.experiments.common import (experiment_parser, full_scale,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.simmpi import Cluster, Engine

__all__ = ["HeatmapCell", "run_cell", "run", "report", "main",
           "DEFAULT_SIZES", "DEFAULT_ITERS"]

DEFAULT_SIZES = (1, 100, 10_000, 100_000)  # MPI_INT counts
FULL_SIZES = (1, 10, 100, 1_000, 10_000, 100_000)
DEFAULT_ITERS = (1, 10, 100, 1_000)
FULL_ITERS = (1, 10, 100, 1_000, 10_000)


@dataclass
class HeatmapCell:
    np_ranks: int
    n_ints: int
    iterations: int
    t1: float
    t2: float
    t3: float
    gain_percent: float


def run_cell(
    n_nodes: int,
    n_ints: int,
    iterations: int,
    group_size: int = 8,
    seed: int = 0,
) -> HeatmapCell:
    """One heatmap cell on a fresh engine — a pure function of its
    parameters, usable as a sweep cell.

    Unlike :func:`run` (which sweeps the whole grid inside one engine
    run, sharing the virtual clock across cells), each cell here starts
    from a cold simulator, so per-cell values can differ from the
    monolithic sweep in low-order timing detail while measuring the
    same protocol.
    """
    cluster = Cluster.plafrim(n_nodes, binding="rr")
    engine = Engine(cluster, seed=seed)

    def program(comm):
        from repro.core import api as mapi
        from repro.core.errors import raise_for_code

        raise_for_code(mapi.mpi_m_init())
        res = grouped_allgather_benchmark(
            comm, group_size=group_size, n_ints=n_ints,
            iterations=iterations, manage_env=False,
        )
        raise_for_code(mapi.mpi_m_finalize())
        return res.t1, res.t2, res.t3

    results = engine.run(program)
    t1 = max(r[0] for r in results)
    t2 = max(r[1] for r in results)
    t3 = max(r[2] for r in results)
    gain = 100.0 * (t1 - (t2 + t3)) / t1 if t1 > 0 else 0.0
    return HeatmapCell(
        np_ranks=cluster.n_ranks, n_ints=n_ints, iterations=iterations,
        t1=t1, t2=t2, t3=t3, gain_percent=gain,
    )


def run(
    node_counts: Sequence[int] = (2,),
    sizes: Sequence[int] = None,
    iteration_counts: Sequence[int] = None,
    group_size: int = 8,
    seed: int = 0,
) -> List[HeatmapCell]:
    """The heatmap grid.  Defaults cover a 4×4 sub-grid on 48 ranks;
    REPRO_FULL extends to the paper's 6×5 grid on 48/96/192 ranks."""
    if sizes is None:
        sizes = FULL_SIZES if full_scale() else DEFAULT_SIZES
    if iteration_counts is None:
        iteration_counts = FULL_ITERS if full_scale() else DEFAULT_ITERS
    if full_scale() and node_counts == (2,):
        node_counts = (2, 4, 8)

    cells: List[HeatmapCell] = []
    for n_nodes in node_counts:
        cluster = Cluster.plafrim(n_nodes, binding="rr")
        engine = Engine(cluster, seed=seed)
        grid = [(s, it) for s in sizes for it in iteration_counts]

        def program(comm):
            from repro.core import api as mapi
            from repro.core.errors import raise_for_code

            raise_for_code(mapi.mpi_m_init())
            out = []
            for n_ints, iters in grid:
                res = grouped_allgather_benchmark(
                    comm, group_size=group_size, n_ints=n_ints,
                    iterations=iters, manage_env=False,
                )
                out.append((n_ints, iters, res.t1, res.t2, res.t3,
                            res.gain_percent))
            raise_for_code(mapi.mpi_m_finalize())
            return out

        results = engine.run(program)
        # Gain as experienced by the slowest rank (the paper measures
        # the communication time of the benchmark loop).
        for idx, (n_ints, iters, *_rest) in enumerate(results[0]):
            t1 = max(r[idx][2] for r in results)
            t2 = max(r[idx][3] for r in results)
            t3 = max(r[idx][4] for r in results)
            gain = 100.0 * (t1 - (t2 + t3)) / t1 if t1 > 0 else 0.0
            cells.append(HeatmapCell(
                np_ranks=cluster.n_ranks, n_ints=n_ints, iterations=iters,
                t1=t1, t2=t2, t3=t3, gain_percent=gain,
            ))
    return cells


def report(cells: List[HeatmapCell]) -> str:
    """Heatmap rendered one table per NP (rows = iterations,
    cols = buffer size), like the paper's three panels."""
    out = []
    for np_ranks in sorted({c.np_ranks for c in cells}):
        sub = [c for c in cells if c.np_ranks == np_ranks]
        sizes = sorted({c.n_ints for c in sub})
        iters = sorted({c.iterations for c in sub})
        headers = ["iters \\ ints"] + [str(s) for s in sizes]
        rows = []
        for it in iters:
            row = [str(it)]
            for s in sizes:
                cell = next(c for c in sub if c.n_ints == s and c.iterations == it)
                row.append(f"{cell.gain_percent:+.0f}%")
            rows.append(row)
        out.append(render_table(
            headers, rows,
            title=f"Fig. 6 — reordering gain heatmap, NP = {np_ranks} "
                  "(green > 0 %: reordering pays off)",
        ))
    return "\n\n".join(out)


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.fig6_allgather", __doc__,
        sizes_help="buffer sizes in MPI_INT counts "
                   f"(default {','.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument("--iters", type=int, nargs="+", default=None,
                        help="iteration counts (default: "
                             f"{' '.join(map(str, DEFAULT_ITERS))})")
    parser.add_argument("--nodes", type=int, nargs="+", default=(2,),
                        help="node counts (24 ranks per node)")
    parser.add_argument("--group-size", type=int, default=8)
    args = parser.parse_args(argv)
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        print(report(run(node_counts=tuple(args.nodes), sizes=args.sizes,
                         iteration_counts=args.iters and tuple(args.iters),
                         group_size=args.group_size, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
