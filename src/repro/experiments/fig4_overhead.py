"""Paper Fig. 4 (§6.2): monitoring overhead on MPI_Reduce.

A reduce of a given buffer size runs repeatedly, once in a monitored
program (library initialized, a session covering the timed region) and
once unmonitored (component disabled).  Per the paper: 48/96/192 MPI
processes (2/4/8 nodes, 24 per node), small message sizes (1 B – 10 kB,
where overhead could be visible), 180 repetitions, unpaired Welch
t-test with 95 % confidence intervals on the *difference of means*.

Claim to reproduce: the difference is mostly statistically
indistinguishable from zero and bounded by a few microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.core import api as mapi
from repro.core.errors import raise_for_code
from repro.experiments.common import (experiment_parser, full_scale,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.simmpi import Cluster, Engine

__all__ = ["OverheadPoint", "measure_reduce_times", "run_point", "run",
           "report", "main"]

DEFAULT_SIZES = (1, 10, 100, 1_000, 10_000)  # bytes, the paper's x-range


@dataclass
class OverheadPoint:
    """One (NP, size) cell of Fig. 4."""

    np_ranks: int
    size_bytes: int
    mean_diff_us: float  # monitored − unmonitored, microseconds
    ci95_us: float  # half-width of the 95% Welch CI
    n_reps: int

    @property
    def significant(self) -> bool:
        return abs(self.mean_diff_us) > self.ci95_us


def measure_reduce_times(
    n_nodes: int,
    size_bytes: int,
    reps: int,
    monitored: bool,
    jitter: float = 0.08,
    seed: int = 0,
) -> np.ndarray:
    """Per-repetition root-side reduce times (virtual seconds).

    One engine run performs ``reps`` timed reduces; network jitter
    makes repetitions vary, as wall-clock noise does on the real
    machine.
    """
    cluster = Cluster.plafrim(n_nodes, binding="rr", jitter=jitter)
    engine = Engine(cluster, seed=seed)

    def program(comm):
        if monitored:
            raise_for_code(mapi.mpi_m_init())
            err, msid = mapi.mpi_m_start(comm)
            raise_for_code(err)
        times = []
        from repro.simmpi.op import MAX

        for _ in range(reps):
            comm.barrier()
            t0 = comm.time
            comm.reduce(None, MAX, root=0, nbytes=size_bytes, algorithm="binary")
            times.append(comm.time - t0)
        if monitored:
            raise_for_code(mapi.mpi_m_suspend(msid))
            raise_for_code(mapi.mpi_m_free(msid))
            raise_for_code(mapi.mpi_m_finalize())
        return times

    results = engine.run(program)
    return np.asarray(results[0])  # the root's timings


def run_point(
    n_nodes: int,
    size_bytes: int,
    reps: int = 0,
    jitter: float = 0.08,
    seed: int = 0,
) -> OverheadPoint:
    """One (NP, size) cell of Fig. 4 — a pure function of its
    parameters, usable as a sweep cell."""
    if reps <= 0:
        reps = 180 if full_scale() else 40
    t_mon = measure_reduce_times(n_nodes, size_bytes, reps, True,
                                 jitter=jitter, seed=seed + 1)
    t_off = measure_reduce_times(n_nodes, size_bytes, reps, False,
                                 jitter=jitter, seed=seed + 2)
    diff_us = (t_mon.mean() - t_off.mean()) * 1e6
    # Unpaired Welch CI on the difference of means (the paper's
    # "unpaired T test with unequal variance").
    se = np.sqrt(t_mon.var(ddof=1) / len(t_mon)
                 + t_off.var(ddof=1) / len(t_off)) * 1e6
    dof = _welch_dof(t_mon, t_off)
    ci = float(stats.t.ppf(0.975, dof) * se)
    return OverheadPoint(
        np_ranks=24 * n_nodes,
        size_bytes=size_bytes,
        mean_diff_us=float(diff_us),
        ci95_us=ci,
        n_reps=reps,
    )


def run(
    node_counts: Sequence[int] = (2, 4, 8),
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = 0,
    jitter: float = 0.08,
    seed: int = 0,
) -> List[OverheadPoint]:
    """The full Fig. 4 grid.  ``reps`` defaults to 180 under
    REPRO_FULL, 40 otherwise."""
    return [
        run_point(n_nodes, size, reps=reps, jitter=jitter, seed=seed)
        for n_nodes in node_counts
        for size in sizes
    ]


def _welch_dof(a: np.ndarray, b: np.ndarray) -> float:
    va, vb = a.var(ddof=1) / len(a), b.var(ddof=1) / len(b)
    if va + vb == 0:
        return len(a) + len(b) - 2.0
    return (va + vb) ** 2 / (
        va**2 / (len(a) - 1) + vb**2 / (len(b) - 1)
    )


def report(points: List[OverheadPoint]) -> str:
    rows = [
        (p.np_ranks, p.size_bytes, round(p.mean_diff_us, 3),
         round(p.ci95_us, 3), "yes" if p.significant else "no")
        for p in points
    ]
    worst = max((abs(p.mean_diff_us) for p in points), default=0.0)
    table = render_table(
        ["NP", "size (B)", "diff (us)", "95% CI (us)", "significant?"],
        rows,
        title="Fig. 4 — monitoring overhead on MPI_Reduce "
              "(positive = monitored slower)",
    )
    return table + f"\nworst-case |overhead|: {worst:.3f} us (paper: < 5 us)"


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.fig4_overhead", __doc__,
        sizes_help="message sizes in bytes "
                   f"(default {','.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument("--nodes", type=int, nargs="+", default=(2, 4, 8),
                        help="node counts (24 ranks per node)")
    parser.add_argument("--reps", type=int, default=0,
                        help="repetitions (default: 40, or 180 under REPRO_FULL)")
    args = parser.parse_args(argv)
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        print(report(run(node_counts=tuple(args.nodes),
                         sizes=args.sizes or DEFAULT_SIZES,
                         reps=args.reps, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
