"""Engine-core A/B benchmark: thread-per-rank vs. event-driven.

Measurement cells for comparing the two engine cores on identical
work, plus the assembler for ``BENCH_engine.json`` — the committed
artifact behind the event-driven-core claims:

* ``fig5_cell``     — one Fig. 5 cell (sweep, monitor, reorder, sweep)
  on either core; both spellings produce bit-identical points, so the
  wall-clock delta is pure scheduling cost.
* ``handoff``       — pure give-way loop between two ranks (no
  messages, no payload); isolates the *per-switch* price of each core
  (OS baton pass vs. generator resume).
* ``scale_world``   — barrier + allreduce world at large rank counts;
  the event core's scale curve (the threaded core cannot start these
  worlds under a realistic memory budget: ~8 MB of stack per rank).

Every measurement that lands in the artifact runs *cold*, single-shot,
in a fresh interpreter (subprocess): the simulator is deterministic,
so repeated warm rounds only measure allocator reuse.  The module
doubles as its own subprocess entry point::

    python -m repro.experiments.engine_bench cell --core eventloop --ranks 64
    python -m repro.experiments.engine_bench scale --ranks 4096
    python -m repro.experiments.engine_bench handoff --core threads

each printing a single JSON object on stdout.  The top-level driver is
``scripts/profile_hotpath.py --bench-json``; CI regenerates a reduced
grid and checks it with :func:`verify_artifact`.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

SCHEMA = "repro-bench-engine/1"

#: Default grids for the committed artifact.
CELL_RANKS = (16, 64)
CELL_SIZES = (1_000_000, 5_000_000, 20_000_000)
SCALE_RANKS = (256, 1024, 4096, 10240)
BIG_WORLD_RANKS = 4096
BIG_WORLD_RLIMIT_AS = 4 << 30  # 4 GiB: a realistic per-job memory budget

__all__ = [
    "SCHEMA", "fig5_cell", "handoff", "scale_world",
    "threads_big_world_attempt", "build_artifact", "verify_artifact",
    "main",
]


def _nodes_for(n_ranks: int) -> int:
    # PlaFRIM nodes carry 24 PUs; keep at least two nodes so the
    # reorder step has inter-node traffic to optimize.
    return max(2, -(-n_ranks // 24))


def _digest(rows: Any) -> str:
    return hashlib.sha256(
        json.dumps(rows, sort_keys=True).encode()).hexdigest()[:16]


def _max_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# ---------------------------------------------------------------------------
# measurement cells (run these in a fresh process for artifact numbers)


def fig5_cell(
    core: str,
    n_ranks: int,
    sizes: Sequence[int] = CELL_SIZES,
    op: str = "reduce",
    reps: int = 1,
    seed: int = 0,
) -> Dict[str, Any]:
    """One timed Fig. 5 cell on ``core``; the result digest covers the
    bit-exact point values so cross-core runs can prove they did
    identical work."""
    from repro.experiments.fig5_collectives import run_cell
    from repro.simmpi import Cluster, Engine

    n_nodes = _nodes_for(n_ranks)
    cluster = Cluster.plafrim(n_nodes, n_ranks=n_ranks, binding="rr")
    engine = Engine(cluster, seed=seed, core=core)
    t0 = time.perf_counter()
    points = run_cell(op, n_nodes, sizes=tuple(sizes), reps=reps,
                      engine=engine)
    wall = time.perf_counter() - t0
    rows = [(p.n_ints, p.t_baseline.hex(), p.t_reordered.hex())
            for p in points]
    return {
        "core": core,
        "n_ranks": n_ranks,
        "op": op,
        "sizes": list(sizes),
        "reps": reps,
        "wall_seconds": wall,
        "switches": engine.switches,
        "resumes": engine.resumes,
        "messages": engine.messages,
        "max_clock": engine.max_clock,
        "result_digest": _digest(rows),
    }


def handoff(
    core: str,
    iters: int = 50_000,
    seed: int = 0,
) -> Dict[str, Any]:
    """Pure scheduler handoff: two ranks alternately advance virtual
    time and give way to whichever is behind.  No messages, no payload
    work — ``wall/switches`` here *is* the per-switch price of the core
    (OS baton pass vs. generator resume).  Slightly different ticks
    keep the two clocks strictly interleaved so almost every give-way
    actually hands off; both spellings produce the same switch count
    (``co_give_way`` is ``maybe_yield`` transliterated)."""
    from repro.simmpi import Cluster, Engine

    cluster = Cluster.plafrim(1, n_ranks=2, binding="packed")
    engine = Engine(cluster, seed=seed, core=core)
    ticks = (1.0e-6, 1.1e-6)

    def prog_threads(comm):
        proc = comm._current()
        eng = comm.engine
        tick = ticks[comm.rank]
        for _ in range(iters):
            proc.clock += tick
            eng.maybe_yield(proc)

    def prog_ev(comm):
        proc = comm._current()
        eng = comm.engine
        tick = ticks[comm.rank]
        for _ in range(iters):
            proc.clock += tick
            yield from eng.co_give_way(proc)

    prog = prog_ev if core == "eventloop" else prog_threads
    t0 = time.perf_counter()
    engine.run(prog)
    wall = time.perf_counter() - t0
    return {
        "core": core,
        "iters": iters,
        "wall_seconds": wall,
        "switches": engine.switches,
        "seconds_per_switch": wall / engine.switches if engine.switches else 0.0,
    }


def scale_world(
    n_ranks: int,
    core: str = "eventloop",
    seed: int = 0,
) -> Dict[str, Any]:
    """Barrier + allreduce + barrier world at ``n_ranks``; the basic
    big-world viability cell (construction cost, run cost, peak RSS).
    The allreduce result is checked so a silent mis-run can't produce
    a flattering number."""
    from repro.simmpi import SUM, Cluster, Engine

    t0 = time.perf_counter()
    cluster = Cluster.plafrim(max(1, -(-n_ranks // 24)), n_ranks=n_ranks,
                              binding="rr")
    engine = Engine(cluster, seed=seed, core=core)
    build = time.perf_counter() - t0

    def prog_threads(comm):
        comm.barrier()
        s = comm.allreduce(np.float64(comm.rank), SUM)
        comm.barrier()
        return float(s)

    def prog_ev(comm):
        yield from comm.co_barrier()
        s = yield from comm.co_allreduce(np.float64(comm.rank), SUM)
        yield from comm.co_barrier()
        return float(s)

    prog = prog_ev if core == "eventloop" else prog_threads
    t0 = time.perf_counter()
    out = engine.run(prog)
    wall = time.perf_counter() - t0
    expect = n_ranks * (n_ranks - 1) / 2.0
    if out[0] != expect:
        raise AssertionError(f"allreduce mismatch: {out[0]} != {expect}")
    return {
        "core": core,
        "n_ranks": n_ranks,
        "build_seconds": build,
        "wall_seconds": wall,
        "resumes": engine.resumes,
        "switches": engine.switches,
        "messages": engine.messages,
        "max_clock": engine.max_clock,
        "max_rss_kb": _max_rss_kb(),
    }


# ---------------------------------------------------------------------------
# cold subprocess plumbing


def _src_root() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _run_json(
    mode_args: List[str],
    rlimit_as: Optional[int] = None,
    timeout: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one measurement cell in a fresh interpreter and parse its
    JSON line.  Returns ``{"outcome": "ok", ...payload}`` or a failure
    record (``error`` / ``timeout``) with the stderr tail preserved."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root() + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.experiments.engine_bench"] + mode_args
    preexec = None
    if rlimit_as is not None:
        def preexec():  # pragma: no cover - child-process hook
            resource.setrlimit(resource.RLIMIT_AS, (rlimit_as, rlimit_as))
    try:
        proc = subprocess.run(
            cmd, env=env, capture_output=True, text=True,
            timeout=timeout, preexec_fn=preexec)
    except subprocess.TimeoutExpired:
        return {"outcome": "timeout", "timeout_seconds": timeout,
                "cmd": mode_args}
    if proc.returncode != 0:
        tail = (proc.stderr or "").strip().splitlines()[-3:]
        return {"outcome": "error", "returncode": proc.returncode,
                "detail": " | ".join(tail), "cmd": mode_args}
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    payload["outcome"] = "ok"
    return payload


def threads_big_world_attempt(
    n_ranks: int = BIG_WORLD_RANKS,
    rlimit_as: int = BIG_WORLD_RLIMIT_AS,
    timeout: float = 180.0,
) -> Dict[str, Any]:
    """Try to start an ``n_ranks`` threaded world under a realistic
    address-space budget; the expected (and documented) result is a
    failure — thread stacks alone want ``n_ranks * ~8 MB``."""
    rec = _run_json(
        ["scale", "--ranks", str(n_ranks), "--core", "threads"],
        rlimit_as=rlimit_as, timeout=timeout)
    rec["n_ranks"] = n_ranks
    rec["rlimit_as_bytes"] = rlimit_as
    return rec


# ---------------------------------------------------------------------------
# artifact


def _median(xs: Sequence[float]) -> float:
    return float(np.median(np.asarray(xs, dtype=float)))


def build_artifact(
    cell_ranks: Sequence[int] = CELL_RANKS,
    cell_sizes: Sequence[int] = CELL_SIZES,
    scale_ranks: Sequence[int] = SCALE_RANKS,
    big_world_ranks: int = BIG_WORLD_RANKS,
    cold_runs: int = 3,
    op: str = "reduce",
    log=print,
) -> Dict[str, Any]:
    """Assemble the BENCH_engine.json document.

    Each fig5 wall-clock is the median of ``cold_runs`` fresh-process
    single-shot runs (all samples are kept in the artifact); counters
    are taken from the last run, and the cross-core result digests are
    compared so the artifact itself witnesses that the two cores did
    bit-identical work.
    """
    size_args = ",".join(str(s) for s in cell_sizes)
    cells: List[Dict[str, Any]] = []
    for n_ranks in cell_ranks:
        row: Dict[str, Any] = {"n_ranks": n_ranks}
        per_core: Dict[str, Dict[str, Any]] = {}
        for core in ("threads", "eventloop"):
            samples: List[float] = []
            last: Dict[str, Any] = {}
            for _ in range(cold_runs):
                rec = _run_json(["cell", "--core", core,
                                 "--ranks", str(n_ranks),
                                 "--sizes", size_args, "--op", op])
                if rec["outcome"] != "ok":
                    raise RuntimeError(f"fig5 cell failed: {rec}")
                samples.append(rec["wall_seconds"])
                last = rec
            per_core[core] = last
            row[f"{core}_wall_seconds"] = _median(samples)
            row[f"{core}_wall_samples"] = samples
            log(f"  fig5[{op}] ranks={n_ranks:<5d} {core:9s} "
                f"median {_median(samples):.3f}s  {samples}")
        row["speedup"] = (row["threads_wall_seconds"]
                          / row["eventloop_wall_seconds"])
        row["switches"] = per_core["threads"]["switches"]
        row["eventloop_resumes"] = per_core["eventloop"]["resumes"]
        row["messages"] = per_core["threads"]["messages"]
        row["result_digest_match"] = (
            per_core["threads"]["result_digest"]
            == per_core["eventloop"]["result_digest"])
        row["result_digest"] = per_core["threads"]["result_digest"]
        cells.append(row)

    log("  per-switch handoff loop ...")
    ping = {core: _run_json(["handoff", "--core", core])
            for core in ("threads", "eventloop")}
    for core, rec in ping.items():
        if rec["outcome"] != "ok":
            raise RuntimeError(f"handoff failed: {rec}")
    per_switch = {
        "threads_seconds_per_switch": ping["threads"]["seconds_per_switch"],
        "eventloop_seconds_per_switch":
            ping["eventloop"]["seconds_per_switch"],
        "ratio": (ping["threads"]["seconds_per_switch"]
                  / ping["eventloop"]["seconds_per_switch"]),
        "iters": ping["threads"]["iters"],
        "method": "pure 2-rank give-way loop (no messages), wall/switches",
    }
    log(f"  per-switch: threads "
        f"{per_switch['threads_seconds_per_switch'] * 1e6:.2f}us vs "
        f"eventloop {per_switch['eventloop_seconds_per_switch'] * 1e6:.2f}us "
        f"({per_switch['ratio']:.1f}x)")

    curve: List[Dict[str, Any]] = []
    for n_ranks in scale_ranks:
        rec = _run_json(["scale", "--ranks", str(n_ranks)], timeout=600)
        if rec["outcome"] != "ok":
            raise RuntimeError(f"scale world failed: {rec}")
        curve.append(rec)
        log(f"  scale eventloop ranks={n_ranks:<6d} "
            f"build {rec['build_seconds']:.3f}s run {rec['wall_seconds']:.3f}s "
            f"resumes={rec['resumes']} rss={rec['max_rss_kb'] // 1024}MB")

    big = threads_big_world_attempt(big_world_ranks)
    log(f"  threads at {big_world_ranks} ranks under "
        f"{BIG_WORLD_RLIMIT_AS >> 30}GiB: {big['outcome']} "
        f"({big.get('detail', '')[:90]})")

    return {
        "schema": SCHEMA,
        "generated_by": "scripts/profile_hotpath.py --bench-json",
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count() or 1,
        },
        "protocol": {
            "measurement": (
                "cold single-shot: every sample is one engine run in a "
                "fresh interpreter; fig5 wall-clock is the median of "
                f"{cold_runs} such runs"),
            "cell": ("fig5 miniature: baseline sweep + monitored "
                     "collective + rootgather + TreeMatch reorder + "
                     "reordered sweep"),
            "op": op,
            "sizes": list(cell_sizes),
        },
        "fig5_cell": cells,
        "per_switch": per_switch,
        "scale_curve": curve,
        "threads_big_world": big,
        "notes": [
            "Both cores execute bit-identical simulations "
            "(result_digest_match); the wall-clock delta is pure "
            "scheduling overhead.",
            "Wall-clock speedup at a given rank count is bounded by the "
            "share of time spent switching: on a 1-CPU host the shared "
            "simulation work (collective trees, matrices, numpy) "
            "dominates, so the structural win is the per-switch ratio "
            "and the scale curve, not a large wall multiple.",
            "The threaded core cannot start the big world under the "
            "same address-space budget the event core runs in "
            "comfortably: each OS thread reserves ~8 MB of stack.",
        ],
    }


def verify_artifact(doc: Dict[str, Any]) -> List[str]:
    """Cheap structural + semantic checks for CI; returns error strings
    (empty list == artifact is sound)."""
    errors: List[str] = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema {doc.get('schema')!r} != {SCHEMA!r}")
        return errors
    cells = doc.get("fig5_cell", [])
    if not cells:
        errors.append("no fig5_cell rows")
    for row in cells:
        n = row.get("n_ranks")
        if not row.get("result_digest_match"):
            errors.append(f"cores disagree at {n} ranks (digest mismatch)")
        if row.get("speedup", 0) <= 1.0:
            errors.append(f"eventloop not faster at {n} ranks: "
                          f"speedup {row.get('speedup')}")
        if row.get("eventloop_resumes") != row.get("switches"):
            errors.append(f"resumes != switches at {n} ranks")
    ps = doc.get("per_switch", {})
    if ps.get("ratio", 0) < 2.0:
        errors.append(f"per-switch ratio {ps.get('ratio')} < 2.0")
    curve = doc.get("scale_curve", [])
    top = max((r.get("n_ranks", 0) for r in curve), default=0)
    if top < 4096:
        errors.append(f"scale curve tops out at {top} ranks (< 4096)")
    for r in curve:
        if r.get("wall_seconds", 0) <= 0 or r.get("resumes", 0) <= 0:
            errors.append(f"degenerate scale row: {r}")
    big = doc.get("threads_big_world", {})
    if big.get("outcome") not in ("error", "timeout"):
        errors.append(f"threaded big world unexpectedly {big.get('outcome')!r}"
                      " — failure not documented")
    return errors


# ---------------------------------------------------------------------------
# subprocess entry point


def _sizes_arg(text: str) -> List[int]:
    return [int(tok) for tok in text.replace("_", "").split(",") if tok]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.engine_bench",
        description="single measurement cells (one JSON object on stdout)")
    sub = parser.add_subparsers(dest="mode", required=True)

    p = sub.add_parser("cell", help="one timed fig5 cell")
    p.add_argument("--core", choices=["threads", "eventloop"],
                   default="threads")
    p.add_argument("--ranks", type=int, default=64)
    p.add_argument("--sizes", type=_sizes_arg, default=list(CELL_SIZES))
    p.add_argument("--op", choices=["reduce", "bcast"], default="reduce")
    p.add_argument("--reps", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("scale", help="barrier+allreduce big world")
    p.add_argument("--core", choices=["threads", "eventloop"],
                   default="eventloop")
    p.add_argument("--ranks", type=int, default=4096)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("handoff", help="per-switch cost microbench")
    p.add_argument("--core", choices=["threads", "eventloop"],
                   default="threads")
    p.add_argument("--iters", type=int, default=50_000)

    args = parser.parse_args(argv)
    if args.mode == "cell":
        rec = fig5_cell(args.core, args.ranks, sizes=args.sizes, op=args.op,
                        reps=args.reps, seed=args.seed)
    elif args.mode == "scale":
        rec = scale_world(args.ranks, core=args.core, seed=args.seed)
    else:
        rec = handoff(args.core, iters=args.iters)
    json.dump(rec, sys.stdout)
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
