"""Paper Table 1 (§7): TreeMatch computation time for large matrices.

Wall-clock time of the mapping computation for communication matrices
of order 8192 – 65536 (paper: 2.6 s, 6.3 s, 20.9 s, 88.7 s).  The
matrices are *structured sparse* (ring + random long-range partners):
a dense 65536² float64 array would need ~34 GB, and placement-relevant
communication matrices are sparse in practice — TreeMatch itself
exploits that (documented substitution, DESIGN.md §6).

Default sizes are scaled down (1024–8192); REPRO_FULL=1 runs the
paper's four sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.experiments.common import (experiment_parser, full_scale,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.placement.treematch import treematch
from repro.simmpi.topology import Topology

__all__ = ["TreeMatchTiming", "synthetic_comm_matrix", "run_order", "run",
           "report", "main"]

DEFAULT_SIZES = (1024, 2048, 4096, 8192)
FULL_SIZES = (8192, 16384, 32768, 65536)


@dataclass
class TreeMatchTiming:
    order: int
    seconds: float


def synthetic_comm_matrix(n: int, long_range: int = 12, seed: int = 0) -> sp.csr_matrix:
    """A sparse affinity matrix with locality structure: heavy ring
    neighbours plus ``long_range`` random lighter partners per row."""
    rng = np.random.default_rng(seed)
    rows = []
    cols = []
    vals = []
    idx = np.arange(n)
    # heavy nearest-neighbour traffic
    for shift, w in ((1, 1000.0), (2, 250.0)):
        rows.append(idx)
        cols.append((idx + shift) % n)
        vals.append(np.full(n, w))
    # light random long-range traffic
    for _ in range(long_range):
        rows.append(idx)
        cols.append(rng.integers(0, n, size=n))
        vals.append(rng.uniform(1.0, 50.0, size=n))
    m = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    m.setdiag(0)
    m.eliminate_zeros()
    return m


def topology_for(n: int) -> Topology:
    """A PlaFRIM-like tree large enough for n processes."""
    nodes = -(-n // 24)
    return Topology([("node", nodes), ("socket", 2), ("core", 12)])


def run_order(n: int, seed: int = 0) -> TreeMatchTiming:
    """Time the mapping computation for one matrix order (real
    wall-clock, not virtual) — usable as a sweep cell."""
    matrix = synthetic_comm_matrix(n, seed=seed)
    topo = topology_for(n)
    pus = list(range(n))  # the first n cores, possibly partial last node
    t0 = time.perf_counter()
    placement = treematch(matrix, topo, allowed_pus=pus)
    dt = time.perf_counter() - t0
    assert sorted(placement) == pus
    return TreeMatchTiming(order=n, seconds=dt)


def run(sizes: Sequence[int] = None, seed: int = 0) -> List[TreeMatchTiming]:
    """Time the mapping computation (real wall-clock, not virtual)."""
    if sizes is None:
        sizes = FULL_SIZES if full_scale() else DEFAULT_SIZES
    return [run_order(n, seed=seed) for n in sizes]


def report(timings: List[TreeMatchTiming]) -> str:
    paper = {8192: 2.6, 16384: 6.3, 32768: 20.9, 65536: 88.7}
    rows = [
        (t.order, round(t.seconds, 2), paper.get(t.order, "-"))
        for t in timings
    ]
    return render_table(
        ["matrix order", "measured (s)", "paper (s)"],
        rows,
        title="Table 1 — TreeMatch reordering computation time",
    )


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.table1_treematch", __doc__,
        sizes_help="matrix orders "
                   f"(default {','.join(map(str, DEFAULT_SIZES))})",
    )
    args = parser.parse_args(argv)
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        print(report(run(sizes=args.sizes, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
