"""Paper Fig. 5 (§6.3): optimizing tree collectives by rank reordering.

The monitoring library decomposes a collective into its point-to-point
messages; TreeMatch then reorders the ranks so the heavy tree edges
stay inside nodes.  Protocol per (operation, NP):

1. ranks are bound round-robin across nodes ("as it would be done
   without any specification given by the user" — the *No monitoring*
   curve);
2. one collective runs under a monitoring session (COLL traffic);
3. the byte matrix is gathered at rank 0, TreeMatch computes ``k``,
   ``MPI_Comm_split`` builds the optimized communicator;
4. both communicators run the collective across the buffer-size sweep.

Fig. 5a: MPI_Reduce (MPI_MAX), binary-tree algorithm, time at the root.
Fig. 5b: MPI_Bcast, binomial-tree algorithm, total (max over ranks)
time.  Paper anchors: at NP = 96 and 2·10⁸ ints the reduce drops
15.16 s → 7.57 s and the bcast 16.34 s → 10.24 s — roughly 2×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.experiments.common import (Series, experiment_parser, full_scale,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.placement.reorder import reorder_from_matrix
from repro.simmpi import Cluster, Engine
from repro.apps.microbench import collective_kernel

__all__ = ["CollectivePoint", "run_cell", "run", "report", "main",
           "DEFAULT_SIZES", "FULL_SIZES"]

DEFAULT_SIZES = (1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000)
FULL_SIZES = DEFAULT_SIZES + (50_000_000, 100_000_000, 200_000_000)


@dataclass
class CollectivePoint:
    op: str
    np_ranks: int
    n_ints: int
    t_baseline: float  # round-robin mapping, seconds
    t_reordered: float  # after monitoring + TreeMatch reordering

    @property
    def speedup(self) -> float:
        return self.t_baseline / self.t_reordered if self.t_reordered else float("inf")


def _measure(comm, op: str, n_ints: int, reps: int = 3) -> float:
    """Median collective time: at the root for reduce ("MPI_Reduce time
    at root"), max over ranks for bcast ("Total MPI_Bcast time")."""
    times = []
    for _ in range(reps):
        comm.barrier()
        t = collective_kernel(comm, op, n_ints)
        times.append(t)
    # np.median of a single sample is that sample; skip the array
    # round-trip for the common reps=1 sweep.
    local = times[0] if len(times) == 1 else float(np.median(times))
    from repro.simmpi.op import MAX as MAXOP

    if op == "reduce":
        # Broadcast the root's own timing so every rank returns it.
        val = comm.bcast(np.float64(local) if comm.rank == 0 else None, root=0)
        return float(val)
    return float(comm.allreduce(np.float64(local), MAXOP))


def _co_measure(comm, op: str, n_ints: int, reps: int = 3):
    """Resumable twin of :func:`_measure` (same call sequence, co_*
    spellings) for event-driven-core cells."""
    from repro.apps.microbench import co_collective_kernel

    times = []
    for _ in range(reps):
        yield from comm.co_barrier()
        t = yield from co_collective_kernel(comm, op, n_ints)
        times.append(t)
    local = times[0] if len(times) == 1 else float(np.median(times))
    from repro.simmpi.op import MAX as MAXOP

    if op == "reduce":
        val = yield from comm.co_bcast(
            np.float64(local) if comm.rank == 0 else None, root=0)
        return float(val)
    res = yield from comm.co_allreduce(np.float64(local), MAXOP)
    return float(res)


def run_cell(
    op: str,
    n_nodes: int,
    sizes: Optional[Sequence[int]] = None,
    reps: int = 3,
    seed: int = 0,
    engine: Optional[Engine] = None,
    core: str = "threads",
) -> List[CollectivePoint]:
    """One Fig. 5 cell: a single (op, node count) engine run covering
    the whole buffer-size sweep.  The monitoring + reordering step is
    shared by every size, so this is the smallest independently
    computable unit of the figure — a pure function of its parameters,
    usable as a sweep cell.

    ``engine`` lets a caller supply a pre-built (e.g. instrumented)
    Engine for ``n_nodes`` PlaFRIM nodes; by default the cell builds
    its own.  ``core`` selects the engine core for the default-built
    engine (``"threads"`` or ``"eventloop"``); a supplied engine's own
    core wins.  Both cores produce bit-identical points — the
    event-driven spelling mirrors the threaded program line for line
    under the co_* API."""
    if sizes is None:
        sizes = FULL_SIZES if full_scale() else DEFAULT_SIZES
    if engine is None:
        cluster = Cluster.plafrim(n_nodes, binding="rr")
        engine = Engine(cluster, seed=seed, core=core)
    else:
        cluster = engine.cluster

    def program(comm):
        out = []
        # --- baseline sweep on the round-robin mapping
        for n_ints in sizes:
            out.append(("base", n_ints, _measure(comm, op, n_ints, reps)))
        # --- monitor one collective's decomposition and reorder
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        collective_kernel(comm, op, sizes[0])
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = mapi.mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.COLL_ONLY
        )
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        opt, _k = reorder_from_matrix(comm, size_mat)
        # --- reordered sweep
        for n_ints in sizes:
            out.append(("reord", n_ints, _measure(opt, op, n_ints, reps)))
        return out

    def co_program(comm):
        # Event-driven spelling of ``program``, one continuation per
        # rank.  The co_sync calls before the plain (blocking)
        # monitoring-API calls are the settle-idempotence discipline of
        # DESIGN.md §4.5: with the deferred send already settled, the
        # blocking call's internal settle no-ops and it runs park-free
        # inside the continuation.
        from repro.apps.microbench import co_collective_kernel
        from repro.placement.reorder import co_reorder_from_matrix

        out = []
        for n_ints in sizes:
            t = yield from _co_measure(comm, op, n_ints, reps)
            out.append(("base", n_ints, t))
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        yield from co_collective_kernel(comm, op, sizes[0])
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = yield from mapi.co_mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.COLL_ONLY
        )
        raise_for_code(err)
        yield from comm.co_sync()
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        opt, _k = yield from co_reorder_from_matrix(comm, size_mat)
        for n_ints in sizes:
            t = yield from _co_measure(opt, op, n_ints, reps)
            out.append(("reord", n_ints, t))
        return out

    results = engine.run(co_program if engine.core == "eventloop" else program)
    rows = results[0]
    base = {n: t for kind, n, t in rows if kind == "base"}
    reord = {n: t for kind, n, t in rows if kind == "reord"}
    return [
        CollectivePoint(
            op=op,
            np_ranks=cluster.n_ranks,
            n_ints=n_ints,
            t_baseline=base[n_ints],
            t_reordered=reord[n_ints],
        )
        for n_ints in sizes
    ]


def run(
    op: str,
    node_counts: Sequence[int] = (2, 4, 8),
    sizes: Optional[Sequence[int]] = None,
    reps: int = 3,
    seed: int = 0,
) -> List[CollectivePoint]:
    """Fig. 5a (``op="reduce"``) or Fig. 5b (``op="bcast"``)."""
    points: List[CollectivePoint] = []
    for n_nodes in node_counts:
        points.extend(run_cell(op, n_nodes, sizes=sizes, reps=reps, seed=seed))
    return points


def report(points: List[CollectivePoint]) -> str:
    rows = [
        (p.op, p.np_ranks, p.n_ints, round(p.t_baseline, 4),
         round(p.t_reordered, 4), round(p.speedup, 2))
        for p in points
    ]
    op = points[0].op if points else "?"
    return render_table(
        ["op", "NP", "ints", "no monitoring (s)", "reordered (s)", "speedup"],
        rows,
        title=f"Fig. 5 — MPI_{op.capitalize()} runtime: round-robin vs "
              "introspection-monitoring + rank reordering",
    )


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.fig5_collectives", __doc__,
        sizes_help="buffer sizes in MPI_INT counts "
                   f"(default {','.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument("--op", choices=["reduce", "bcast"], default=None,
                        help="run a single collective (default: both)")
    parser.add_argument("--nodes", type=int, nargs="+", default=(2, 4, 8),
                        help="node counts (24 ranks per node)")
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args(argv)
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        for op in ([args.op] if args.op else ["reduce", "bcast"]):
            print(report(run(op, node_counts=tuple(args.nodes),
                             sizes=args.sizes, reps=args.reps,
                             seed=args.seed)))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
