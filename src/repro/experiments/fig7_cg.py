"""Paper Fig. 7 (§6.5): rank reordering on the NAS CG benchmark.

Per (class, NP, initial mapping): run CG twice on the same cluster —

* **baseline**: the initial mapping as-is;
* **reordered**: the CG *initialization* iteration runs under a
  monitoring session (the paper exploits NPB's untimed init phase so no
  data redistribution is needed), the point-to-point byte matrix is
  gathered at rank 0, TreeMatch computes ``k``, and the timed
  iterations run on the split communicator.  The reordering time
  (including the modeled TreeMatch computation) is charged to the
  total, "in order to be fair".

Reported, as in the paper: the execution-time ratio (Fig. 7a) and the
rank-0 communication-time ratio (Fig. 7b), baseline / reordered —
ratios > 1 mean the reordering wins.  NP ∈ {64, 128, 256} on 3/6/11
nodes (24 cores each, some cores spared → partially-occupied nodes),
initial mappings random / round-robin / standard (packed).

Iteration scaling: ``sim_iters`` outer iterations are simulated and the
per-iteration time is scaled to the class's ``niter`` (exact for this
perfectly periodic kernel; see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.cg import CG_CLASSES, CGConfig, cg_outer_iteration, cg_setup
from repro.core import api as mapi
from repro.core.constants import Flags, MPI_M_DATA_IGNORE
from repro.core.errors import raise_for_code
from repro.experiments.common import (experiment_parser, full_scale,
                                      handle_trace_in, render_table,
                                      trace_capture)
from repro.placement.reorder import reorder_from_matrix
from repro.simmpi import Cluster, Engine

__all__ = ["CGPoint", "run_one", "run", "report", "nodes_for", "main",
           "default_grid"]

MAPPINGS = ("random", "rr", "standard")


def nodes_for(np_ranks: int) -> int:
    """The paper's node counts: 3, 6 and 11 nodes for 64/128/256;
    otherwise the minimum number of 24-core nodes."""
    return {64: 3, 128: 6, 256: 11}.get(np_ranks, -(-np_ranks // 24))


@dataclass
class CGPoint:
    cg_class: str
    np_ranks: int
    mapping: str
    t_base: float
    t_reordered: float  # includes the reordering cost
    comm_base: float  # rank 0 MPI time
    comm_reordered: float

    @property
    def exec_ratio(self) -> float:
        return self.t_base / self.t_reordered

    @property
    def comm_ratio(self) -> float:
        return self.comm_base / self.comm_reordered


def _cg_program(comm, config: CGConfig, sim_iters: int, niter: int,
                reorder: bool):
    """Returns (total_time, rank0_comm_time) scaled to ``niter``."""
    state = cg_setup(comm, config)
    t_start = comm.time

    if reorder:
        raise_for_code(mapi.mpi_m_init())
        err, msid = mapi.mpi_m_start(comm)
        raise_for_code(err)
        cg_outer_iteration(comm, state, 0)  # the monitored init phase
        raise_for_code(mapi.mpi_m_suspend(msid))
        err, _, size_mat = mapi.mpi_m_rootgather_data(
            msid, 0, MPI_M_DATA_IGNORE, None, Flags.P2P_ONLY
        )
        raise_for_code(err)
        raise_for_code(mapi.mpi_m_free(msid))
        raise_for_code(mapi.mpi_m_finalize())
        run_comm, _k = reorder_from_matrix(comm, size_mat)
        # Logical roles follow the new ranks; NPB's init structure means
        # no data needs to move (the paper's trick).
        state = cg_setup(run_comm, config)
        state_comm = run_comm
    else:
        cg_outer_iteration(comm, state, 0)  # untimed init, as in NPB
        state_comm = comm

    reorder_cost = comm.time - t_start

    t0, c0 = state_comm.time, state.comm_time
    for it in range(1, sim_iters + 1):
        cg_outer_iteration(state_comm, state, it)
    per_iter = (state_comm.time - t0) / sim_iters
    per_iter_comm = (state.comm_time - c0) / sim_iters

    total = reorder_cost + per_iter * niter if reorder else per_iter * niter
    comm_time = per_iter_comm * niter
    if reorder:
        comm_time += reorder_cost  # reordering is pure communication+mapping
    return total, comm_time


def run_one(
    cg_class: str,
    np_ranks: int,
    mapping: str,
    sim_iters: int = 2,
    seed: int = 0,
    compute_rate: float = 1.2e8,
) -> CGPoint:
    """One Fig. 7 bar: baseline vs reordered CG."""
    cls = CG_CLASSES[cg_class]
    config = CGConfig(cls, mode="modeled", compute_rate=compute_rate)
    binding = {"random": "random", "rr": "round_robin",
               "standard": "packed"}[mapping]
    n_nodes = nodes_for(np_ranks)

    results: Dict[bool, Tuple[float, float]] = {}
    for reorder in (False, True):
        cluster = Cluster.plafrim(n_nodes, n_ranks=np_ranks, binding=binding,
                                  seed=seed)
        engine = Engine(cluster, seed=seed)
        out = engine.run(
            _cg_program, args=(config, sim_iters, cls.niter, reorder)
        )
        total = max(t for t, _ in out)
        comm0 = out[0][1]  # rank 0's MPI time, as the paper measures
        results[reorder] = (total, comm0)

    return CGPoint(
        cg_class=cg_class,
        np_ranks=np_ranks,
        mapping=mapping,
        t_base=results[False][0],
        t_reordered=results[True][0],
        comm_base=results[False][1],
        comm_reordered=results[True][1],
    )


def default_grid(
    classes: Optional[Sequence[str]] = None,
    rank_counts: Optional[Sequence[int]] = None,
) -> List[Tuple[str, int]]:
    """The (class, NP) pairs the figure covers at the current scale."""
    if full_scale():
        return [(c, p) for c in (classes or ("B", "C", "D"))
                for p in (rank_counts or (64, 128, 256))]
    if classes is not None or rank_counts is not None:
        return [(c, p) for c in (classes or ("B",))
                for p in (rank_counts or (64,))]
    return [("B", 64), ("C", 64), ("D", 64), ("B", 128), ("B", 256)]


def run(
    classes: Optional[Sequence[str]] = None,
    rank_counts: Optional[Sequence[int]] = None,
    mappings: Sequence[str] = MAPPINGS,
    sim_iters: int = 2,
    seed: int = 0,
) -> List[CGPoint]:
    """The Fig. 7 grid.  Defaults: classes B/C/D × NP 64 × all mappings
    plus class B at 128/256; REPRO_FULL runs the complete paper grid."""
    points: List[CGPoint] = []
    for cg_class, np_ranks in default_grid(classes, rank_counts):
        for mapping in mappings:
            points.append(run_one(cg_class, np_ranks, mapping,
                                  sim_iters=sim_iters, seed=seed))
    return points


def report(points: List[CGPoint]) -> str:
    rows = [
        (p.cg_class, p.np_ranks, p.mapping,
         round(p.exec_ratio, 3), round(p.comm_ratio, 3),
         round(p.t_base, 2), round(p.t_reordered, 2))
        for p in points
    ]
    return render_table(
        ["class", "NP", "mapping", "exec ratio", "comm ratio",
         "t_base (s)", "t_reord (s)"],
        rows,
        title="Fig. 7 — NAS CG reordering gain (ratio > 1: reordering wins)",
    )


def main(argv=None) -> int:
    parser = experiment_parser(
        "python -m repro.experiments.fig7_cg", __doc__,
        sizes_help="rank counts NP (default: the paper grid 64,128,256)",
    )
    parser.add_argument("--classes", nargs="+", default=None,
                        choices=sorted(CG_CLASSES),
                        help="NPB classes (default: figure grid)")
    parser.add_argument("--mappings", nargs="+", default=MAPPINGS,
                        choices=MAPPINGS)
    parser.add_argument("--sim-iters", type=int, default=2)
    args = parser.parse_args(argv)
    if handle_trace_in(args):
        return 0
    with trace_capture(args):
        print(report(run(classes=args.classes, rank_counts=args.sizes,
                         mappings=tuple(args.mappings),
                         sim_iters=args.sim_iters, seed=args.seed)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
