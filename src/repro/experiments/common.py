"""Shared infrastructure for the per-figure experiment drivers.

Cluster presets mirror the paper's testbeds; ``full_scale()`` gates the
paper-scale parameter grids behind the ``REPRO_FULL`` environment
variable (the default grids are scaled down so the whole benchmark
suite runs in minutes on a laptop — the *shapes* are identical, see
EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "full_scale",
    "Series",
    "render_table",
    "geomean",
    "parse_sizes",
    "experiment_parser",
    "handle_trace_in",
    "trace_capture",
]


def full_scale() -> bool:
    """True when REPRO_FULL=1: run the paper-scale grids."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "no")


@dataclass
class Series:
    """One labelled series of (x, y) points, as plotted in a figure."""

    label: str
    x: List[Any] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def add(self, x: Any, y: float) -> None:
        self.x.append(x)
        self.y.append(float(y))

    def as_rows(self) -> List[tuple]:
        return list(zip(self.x, self.y))


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Fixed-width text table (the bench harness prints these)."""
    rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.4g}"
    return str(v)


def parse_sizes(text: str) -> Tuple[int, ...]:
    """``"1000,2e6,5_000"`` → ``(1000, 2000000, 5000)``.

    Accepts comma-separated integers with ``_`` separators or scientific
    notation (``2e8``), matching how the paper states its grids.
    """
    out = []
    for token in text.split(","):
        token = token.strip().replace("_", "")
        if not token:
            continue
        value = float(token)
        if value != int(value):
            raise argparse.ArgumentTypeError(f"size {token!r} is not an integer")
        out.append(int(value))
    if not out:
        raise argparse.ArgumentTypeError(f"no sizes in {text!r}")
    return tuple(out)


def experiment_parser(
    prog: str,
    description: str,
    sizes_help: str = "comma-separated grid of sizes (module default if omitted)",
    default_seed: Optional[int] = 0,
) -> argparse.ArgumentParser:
    """The shared CLI skeleton for every ``experiments/fig*.py`` driver.

    Every driver accepts ``--seed`` and ``--sizes`` with the same
    spelling and semantics, so the sweep registry
    (:mod:`repro.sweep.registry`) can enumerate any experiment's grid
    without duplicating per-script defaults.  Drivers add their own
    experiment-specific options on top.
    """
    parser = argparse.ArgumentParser(prog=prog, description=description)
    seed_note = "module default" if default_seed is None else str(default_seed)
    parser.add_argument("--seed", type=int, default=default_seed,
                        help=f"RNG seed (default {seed_note})")
    parser.add_argument("--sizes", type=parse_sizes, default=None,
                        metavar="N,N,...", help=sizes_help)
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record every simulated run inside this driver "
                             "to PATH as a replay trace (subsequent runs go "
                             "to PATH.1, PATH.2, ...)")
    parser.add_argument("--trace-in", default=None, metavar="PATH",
                        help="skip the live simulation: load a recorded "
                             "replay trace, re-cost it through the network "
                             "model (verified bit-exact) and print a summary")
    # Recorded traces carry the workload name in their header metadata.
    parser.set_defaults(_prog=prog)
    return parser


def handle_trace_in(args: argparse.Namespace, consumer=None) -> bool:
    """Serve ``--trace-in``: consume a recorded trace instead of
    running live.

    Call first thing in a driver's ``main``; a True return means the
    run was served from the trace and the driver should exit.  The
    default consumer replays the trace *verified* (every recomputed
    clock cross-checked against the recorded one), so a stale or
    corrupted trace fails loudly rather than printing plausible
    numbers.  Tools that want the trace itself (``repro.obs export
    --trace-in`` / ``diagnose --trace-in``) pass a ``consumer`` called
    with the loaded :class:`~repro.replay.schema.ReplayTrace`; its
    return value is ignored — the shared code only owns the
    load-and-dispatch step.
    """
    path = getattr(args, "trace_in", None)
    if not path:
        return False
    from repro.replay.schema import ReplayTrace

    trace = ReplayTrace.load(path)
    if consumer is not None:
        consumer(trace)
        return True
    from repro.replay.engine import replay

    res = replay(trace, verify=True)
    total = int(res.byte_matrix().sum())
    meta = trace.meta or {}
    workload = meta.get("workload", "?")
    print(f"replayed {path} (workload {workload}): "
          f"{trace.world_size} ranks, {len(trace.events)} events, "
          f"{res.n_messages} messages, {total} bytes on the wire")
    print(f"  makespan {res.max_clock:.6f}s (bit-exact vs recorded run)")
    return True


@contextlib.contextmanager
def trace_capture(args: argparse.Namespace):
    """Honour ``--trace-out`` around a driver body (no-op without it)."""
    path = getattr(args, "trace_out", None)
    if not path:
        yield
        return
    from repro.replay import autorecord

    # "python -m repro.experiments.fig5_collectives" -> "fig5_collectives"
    prog = getattr(args, "_prog", "experiment")
    meta = {"workload": prog.rsplit(".", 1)[-1]}
    autorecord.enable_to(path, meta=meta)
    try:
        yield
    finally:
        autorecord.disable()
    print(f"trace(s) recorded to {path}")


def geomean(values: Sequence[float]) -> float:
    import numpy as np

    vals = np.asarray([v for v in values if v > 0], dtype=float)
    if len(vals) == 0:
        return float("nan")
    return float(np.exp(np.log(vals).mean()))
