"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP-660 editable installs (which must build a wheel) fail.
This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
